// Distributed KV-cache decoding: O(T) token steps over the device mesh.
//
// VoltageRuntime accelerates the *prefill*; regenerating every token through
// it costs O(T^2) compute and a full (K-1)NF/K gather per layer per token.
// This decoder keeps the paper's position partition but makes the attention
// state partition-resident: one distributed prefill fills per-device caches
// (each device permanently holds its own positions' rows — K/V for Eq.(3)
// layers, the raw x for Eq.(8) layers, per Theorem 2's selection at the
// prefill shape) and each decode step ships only
//   - one K-wide broadcast of the new token rows ([B x F], one embedded row
//     per in-flight sequence), and
//   - per layer, one softmax-merge all-reduce of per-head
//     (max, denominator, weighted-value) triples — 2(K-1) messages of
//     B*H*(F_H+2) floats (collective/softmax_merge.h).
// Every device then finishes the layer (residual, LayerNorms, FFN) on the
// B rows redundantly, so the layer output never needs to be gathered:
// per-step wire volume is O(K*B*F + L*K*B*H*F_H), independent of the
// context length T — and the *message count* is independent of B, which is
// what makes iteration-level batching pay on a latency-bound mesh.
//
// Multi-sequence serving (continuous batching): the decoder hosts
// independent sequences in numbered slots. prime_slot() runs a distributed
// prefill into a fresh slot, step_batch() advances any subset of the live
// slots by one token in a single command/broadcast/merge round, and
// release_slot() returns the slot's KV blocks to each device's shared
// KvBlockPool. Per-slot state is fully isolated (own caches, own round-robin
// position ownership), every collective folds in fixed rank order, and the
// post-attention tail is row-independent, so a batched step is bitwise
// identical to stepping each sequence alone. The single-sequence
// prime()/step()/extend() API is slot 0 throughout.
//
// Speculative decoding: step_speculative() widens each lane from one token
// to a verify window (one committed token + k drafts from a Drafter). The
// window rides the same wire round — one command broadcast carrying all
// rows, one k-row softmax merge per layer, one final send — so k draft
// positions are verified for the message cost of a single token; greedy
// longest-prefix acceptance then commits the matched tokens and every
// device truncates the rejected rows from its caches. Output is guaranteed
// token-identical to sequential greedy decode (DESIGN.md "Speculative
// decoding").
//
// Device k = persistent worker thread k (spawned once at construction; the
// caches live on them across calls); the calling thread is the terminal
// device K, running embedding and the LM head. New decode positions are
// assigned round-robin per slot so cache growth stays balanced. Failure
// containment follows the runtimes: first failing thread poisons the
// transport, the terminal joins everyone and rethrows the root cause; the
// decoder (and every slot on it) is dead afterwards — build a new one.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "net/quant_codec.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "partition/decode_attention.h"
#include "partition/order.h"
#include "partition/scheme.h"
#include "quant/quantized_stack.h"
#include "transformer/model.h"

namespace voltage {

// Index of one in-flight sequence on a DistributedDecoder.
using SlotId = std::size_t;

// One lane of a batched decode step: append `token` to `slot` and return its
// next-token logits row.
struct SlotToken {
  SlotId slot = 0;
  TokenId token = 0;
};

// One lane of a speculative verify round (step_speculative): commit `token`
// to `slot` and verify the `drafts` — a guessed greedy continuation from a
// Drafter (runtime/drafter.h) — in the same collective round-trip. Empty
// drafts make the lane an ordinary single-token step.
struct SlotWindow {
  SlotId slot = 0;
  TokenId token = 0;
  std::span<const TokenId> drafts;
};

// What one lane's verify round committed.
struct LaneCommit {
  std::size_t accepted = 0;     // drafts the target model agreed with
  std::size_t drafted = 0;      // drafts actually verified (window may trim)
  std::vector<TokenId> tokens;  // accepted + 1 greedy tokens, in order
  Tensor logits;                // [1 x vocab] — produced tokens.back()
};

class DistributedDecoder {
 public:
  // Requires a causal LM; `scheme.devices()` workers plus the terminal.
  DistributedDecoder(const TransformerModel& model, PartitionScheme scheme,
                     OrderPolicy policy = OrderPolicy::kAdaptive,
                     TransportKind transport = TransportKind::kInMemory);

  // Bring-your-own transport (e.g. a ChaosTransport for fault-injection
  // tests). Must have devices() == scheme devices + 1 (the terminal).
  DistributedDecoder(const TransformerModel& model, PartitionScheme scheme,
                     OrderPolicy policy, std::unique_ptr<Transport> transport);

  // Shuts the workers down (or just joins them if the mesh is poisoned).
  ~DistributedDecoder();

  DistributedDecoder(const DistributedDecoder&) = delete;
  DistributedDecoder& operator=(const DistributedDecoder&) = delete;

  // --- Single-sequence API (slot 0) ----------------------------------------

  // Distributed prefill: runs the prompt through the partitioned stack once,
  // leaving every device's caches resident, and returns next-token logits
  // [1 x vocab]. Calling prime() again starts over: every live slot is
  // released and the prompt becomes slot 0.
  [[nodiscard]] Tensor prime(std::span<const TokenId> prompt);

  // Appends one token to slot 0 and returns next-token logits; per-step wire
  // bytes are independent of the context length.
  [[nodiscard]] Tensor step(TokenId token);

  // Appends several committed tokens (e.g. an extended prompt) without
  // re-running the prefill; returns the logits after the last one. The
  // single-device counterpart is IncrementalDecoder::extend.
  [[nodiscard]] Tensor extend(std::span<const TokenId> tokens);

  [[nodiscard]] std::size_t position() const noexcept {
    return slots_.empty() ? 0 : slots_[0].position;
  }

  // --- Multi-sequence API (continuous batching) ----------------------------

  struct PrimedSlot {
    SlotId slot = 0;
    Tensor logits;  // [1 x vocab] next-token logits after the prompt
  };

  // Distributed prefill of a new sequence into the lowest free slot (slot
  // ids are recycled after release_slot). Existing slots are untouched: the
  // new sequence's caches draw fresh blocks from each device's pool.
  [[nodiscard]] PrimedSlot prime_slot(std::span<const TokenId> prompt);

  // One iteration-level batched decode step: appends batch[r].token to
  // batch[r].slot for every lane and returns [B x vocab] logits, row r for
  // lane r. All lanes advance in one command broadcast and one softmax-merge
  // round per layer; each lane's result is bitwise identical to stepping its
  // slot alone. Lanes must name distinct, primed slots.
  [[nodiscard]] Tensor step_batch(std::span<const SlotToken> batch);

  // One speculative verify round: for every lane, commits lanes[w].token,
  // verifies its drafts against the target model's own greedy choices, and
  // commits the longest matching prefix plus the model's one bonus token —
  // all lanes, all draft positions, in a single command broadcast and one
  // softmax-merge round per layer, the *same message count as a single
  // token*. Rejected draft positions are rolled out of every device's KV
  // cache before the call returns, so the decoder state afterwards is
  // exactly "the committed tokens were stepped one by one": the returned
  // token stream is token-identical (and the logits bitwise identical) to
  // sequential greedy decode, whatever the drafter proposed. Speculative
  // and draftless lanes mix freely in one round. Drafts are trimmed to the
  // slot's remaining context window; lanes must name distinct, primed slots
  // with at least one position of window left.
  [[nodiscard]] std::vector<LaneCommit> step_speculative(
      std::span<const SlotWindow> lanes);

  // Frees the slot: every device returns its KV blocks to the pool and the
  // slot id becomes reusable. The mesh stays live for the other slots.
  void release_slot(SlotId slot);

  [[nodiscard]] std::size_t slot_position(SlotId slot) const;
  [[nodiscard]] bool slot_active(SlotId slot) const noexcept {
    return slot < slots_.size() && slots_[slot].active;
  }
  [[nodiscard]] std::size_t active_slots() const noexcept {
    std::size_t n = 0;
    for (const SlotMeta& s : slots_) n += s.active ? 1 : 0;
    return n;
  }

  // --------------------------------------------------------------------------

  // Byte-accurate traffic since construction (worker ids 0..K-1, terminal
  // id K).
  [[nodiscard]] const Transport& fabric() const noexcept {
    return *transport_;
  }
  [[nodiscard]] DeviceId terminal_id() const noexcept {
    return scheme_.devices();
  }
  [[nodiscard]] const PartitionScheme& scheme() const noexcept {
    return scheme_;
  }

  // Attaches a span tracer (nullptr detaches). The terminal emits
  // "decode.prefill" / "decode.step" spans carrying the token index, the
  // batch size and the step's total wire bytes; workers emit per-layer
  // compute and softmax-merge comm spans on their own tracks, plus a
  // "wait_command" span covering each idle wait. Because that wait span
  // closes when the shutdown command arrives, an attached tracer must
  // outlive the decoder object itself, not just the last request — declare
  // the tracer first.
  //
  // Flow-graph closure caveat: prime()/step() return on the terminal's
  // critical path, while workers off that path may still be draining their
  // last collective receives. Every arrow of a request is only guaranteed
  // matched on the trace once the decoder has been destroyed (or served a
  // later command) — export after teardown if you intend to --validate.
  void set_tracer(obs::Tracer* tracer);

  // Attaches transport.* counters plus the "decode.tokens" counter.
  void set_metrics(obs::MetricsRegistry* metrics);

  // Attaches the live telemetry hub (nullptr detaches). Workers report the
  // time spent serving each command (prefill or step, including collective
  // waits) so the hub can expose per-device utilization; idle waiting
  // between commands does not count as busy.
  void set_telemetry(obs::TelemetryHub* telemetry) noexcept {
    telemetry_.store(telemetry, std::memory_order_release);
  }

  // Attaches the crash-dump flight recorder to the transport (see
  // Transport::set_flight_recorder).
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    transport_->set_flight_recorder(recorder);
  }

  // Per-request receive budget in seconds (default 0: wait forever),
  // threaded through every blocking receive of a prime/step — idle workers
  // always wait without a deadline, so a decoder may sit unused forever.
  void set_recv_timeout(double seconds) noexcept {
    recv_timeout_seconds_ = seconds;
  }

  // Caps each worker's KvBlockPool at `blocks` blocks (0 = unbounded;
  // default). Effective from the pool's creation at the worker's first
  // prefill, so set it before the first prime. A device that runs out of
  // blocks fails its command with std::length_error and poisons the mesh
  // like any other device failure — size the cap (or the admission policy
  // above) so steady-state serving never hits it.
  void set_kv_block_limit(std::size_t blocks) noexcept {
    kv_block_limit_.store(blocks, std::memory_order_relaxed);
  }

  // Intra-op thread budget for each worker's kernels (default 1; see
  // VoltageRuntime::set_intra_op_threads — bitwise-neutral).
  void set_intra_op_threads(std::size_t n) noexcept {
    intra_op_threads_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  // Precision::kInt8 switches the hot paths to the quantized plane: prefill
  // layer compute runs the int8 stack (quant/quantized_stack.h) and its
  // per-layer all-gathers plus each step's token-row broadcast travel as
  // int8 + per-row scales (net/quant_codec.h), ~4x fewer wire bytes.
  // Attention state stays fp32 (caches, online-softmax merge triples, the
  // final row), so the exact log-sum-exp merge is untouched. Quantizes the
  // model once on first use. Same call contract as set_recv_timeout: call
  // between requests from the calling thread; takes effect from the next
  // prime()/step() (each command carries the precision, so mixing is safe —
  // the caches are fp32 under both planes). Per-row activation scales keep
  // the quantized tail row-independent, so batched int8 steps stay bitwise
  // identical to sequential int8 steps.
  void set_precision(Precision precision);
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

 private:
  // Terminal-side view of a slot; the workers mirror it with the caches.
  struct SlotMeta {
    bool active = false;
    std::size_t position = 0;    // committed positions
    std::size_t prompt_len = 0;  // fixes the round-robin owner phase
  };

  // Worker-side state of one slot: the per-layer resident caches.
  struct WorkerSlot {
    bool active = false;
    std::size_t prompt_len = 0;
    std::vector<DecodeLayerCache> caches;
  };

  // One verify/step round as the terminal sees it: window w commits the
  // first `committed` of its tokens unconditionally and verifies the rest
  // as drafts. step_batch, extend and step_speculative are all this round
  // with different window shapes.
  struct WindowSpec {
    SlotId slot = 0;
    std::vector<TokenId> tokens;  // committed prefix, then drafts
    std::size_t committed = 1;
  };
  struct WindowRound {
    Tensor logits;                       // [R x vocab], command-row aligned
    std::vector<std::size_t> row_begin;  // per window: its first row
    std::vector<std::size_t> accepted;   // per window: drafts accepted
  };
  [[nodiscard]] WindowRound run_window_round(
      std::span<const WindowSpec> windows);

  void worker_main(std::size_t i);
  void worker_prefill(std::size_t i, std::size_t n,
                      std::vector<DecodeLayerCache>& caches,
                      KvBlockPool* pool, const RecvOptions& options,
                      obs::Tracer* tracer, Precision wire);
  void worker_step_windows(std::size_t i, std::vector<WorkerSlot>& slots,
                           const Tensor& cmd, const RecvOptions& options,
                           obs::Tracer* tracer, Precision wire);

  void ensure_alive() const;
  void join_workers() noexcept;
  // Terminal failure path: poison, join, report the root cause. Never
  // returns normally; the decoder is dead afterwards.
  [[noreturn]] void fail_request();

  const TransformerModel& model_;
  PartitionScheme scheme_;
  OrderPolicy policy_;
  std::unique_ptr<Transport> transport_;
  std::vector<DeviceId> everyone_;  // workers + terminal (broadcast group)
  std::vector<DeviceId> workers_;   // merge group

  std::atomic<obs::Tracer*> tracer_{nullptr};
  std::atomic<obs::TelemetryHub*> telemetry_{nullptr};
  obs::Counter* decode_tokens_ = nullptr;
  std::atomic<std::size_t> intra_op_threads_{1};
  std::atomic<std::size_t> kv_block_limit_{0};  // 0 = unbounded
  double recv_timeout_seconds_ = 0.0;           // <= 0: no deadline
  Precision precision_ = Precision::kFp32;
  // Built lazily by set_precision(kInt8); workers read it while serving an
  // int8-flagged command, which happens-after the terminal set it (the
  // command broadcast's mailbox handoff orders the accesses).
  std::unique_ptr<QuantizedStack> qstack_;

  std::vector<SlotMeta> slots_;  // terminal's view, indexed by SlotId
  bool dead_ = false;

  std::vector<std::exception_ptr> errors_;  // one slot per worker
  std::vector<std::thread> threads_;
};

}  // namespace voltage
