#include "runtime/drafter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace voltage {

PromptLookupDrafter::PromptLookupDrafter(std::size_t max_ngram)
    : max_ngram_(max_ngram) {
  if (max_ngram_ == 0) {
    throw std::invalid_argument("PromptLookupDrafter: max_ngram == 0");
  }
}

void PromptLookupDrafter::begin(std::span<const TokenId> prompt) {
  history_.assign(prompt.begin(), prompt.end());
}

void PromptLookupDrafter::observe(std::span<const TokenId> tokens) {
  history_.insert(history_.end(), tokens.begin(), tokens.end());
}

std::vector<TokenId> PromptLookupDrafter::draft(std::size_t max_tokens) {
  const std::size_t n = history_.size();
  if (max_tokens == 0 || n < 2) return {};
  // Longest suffix n-gram first; among equal lengths, the most recent
  // earlier occurrence (the best local predictor of what follows).
  const std::size_t top = std::min(max_ngram_, n - 1);
  for (std::size_t len = top; len >= 1; --len) {
    const TokenId* suffix = history_.data() + (n - len);
    for (std::size_t start = n - len; start-- > 0;) {
      if (!std::equal(suffix, suffix + len, history_.data() + start)) continue;
      // Continuation tokens after the match; it may legitimately run into
      // the suffix region (a period-c cycle matches c back and its
      // continuation replays the cycle), but never past the history.
      const std::size_t follow = start + len;
      const std::size_t take = std::min(max_tokens, n - follow);
      if (take == 0) continue;
      return {history_.begin() + static_cast<std::ptrdiff_t>(follow),
              history_.begin() + static_cast<std::ptrdiff_t>(follow + take)};
    }
  }
  return {};
}

ModelDrafter::ModelDrafter(const TransformerModel& model)
    : decoder_(model), max_positions_(model.spec().max_positions) {}

void ModelDrafter::begin(std::span<const TokenId> prompt) {
  last_logits_ = decoder_.prime(prompt);
  primed_ = true;
}

void ModelDrafter::observe(std::span<const TokenId> tokens) {
  if (!primed_) {
    throw std::logic_error("ModelDrafter: begin() before observe()");
  }
  if (tokens.empty()) return;
  last_logits_ = decoder_.extend(tokens);
}

std::vector<TokenId> ModelDrafter::draft(std::size_t max_tokens) {
  if (!primed_) {
    throw std::logic_error("ModelDrafter: begin() before draft()");
  }
  std::vector<TokenId> drafts;
  const std::size_t mark = decoder_.position();
  Tensor logits = last_logits_;
  while (drafts.size() < max_tokens &&
         decoder_.position() + 1 <= max_positions_) {
    const TokenId next = static_cast<TokenId>(argmax_row(logits, 0));
    drafts.push_back(next);
    // The last draft's own logits are never needed: the verifier supplies
    // the real model's logits for every committed position.
    if (drafts.size() == max_tokens) break;
    logits = decoder_.step(next);
  }
  decoder_.rollback(mark);
  return drafts;
}

SpeculationController::SpeculationController(std::size_t max_drafts,
                                             double smoothing)
    : max_drafts_(max_drafts), smoothing_(smoothing) {
  if (smoothing_ <= 0.0 || smoothing_ > 1.0) {
    throw std::invalid_argument("SpeculationController: smoothing in (0, 1]");
  }
}

std::size_t SpeculationController::window() const noexcept {
  if (max_drafts_ == 0) return 0;
  // ceil(rate * max): a slot accepting ~everything keeps the full window,
  // one accepting nothing still probes a single draft (the probe is free —
  // it rides a round-trip that happens anyway).
  const double scaled = rate_ * static_cast<double>(max_drafts_);
  const auto window = static_cast<std::size_t>(std::ceil(scaled));
  return std::clamp<std::size_t>(window, 1, max_drafts_);
}

void SpeculationController::update(std::size_t accepted,
                                   std::size_t drafted) noexcept {
  if (drafted == 0) return;
  const double sample =
      static_cast<double>(accepted) / static_cast<double>(drafted);
  rate_ += smoothing_ * (sample - rate_);
}

}  // namespace voltage
