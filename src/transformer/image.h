// Minimal dense image container for the ViT path (HWC float layout).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace voltage {

struct Image {
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t channels = 0;
  std::vector<float> pixels;  // height * width * channels, HWC order

  Image() = default;
  Image(std::size_t h, std::size_t w, std::size_t c)
      : height(h), width(w), channels(c), pixels(h * w * c, 0.0F) {}

  [[nodiscard]] float& at(std::size_t y, std::size_t x,
                          std::size_t c) noexcept {
    assert(y < height && x < width && c < channels);
    return pixels[(y * width + x) * channels + c];
  }
  [[nodiscard]] float at(std::size_t y, std::size_t x,
                         std::size_t c) const noexcept {
    assert(y < height && x < width && c < channels);
    return pixels[(y * width + x) * channels + c];
  }
};

}  // namespace voltage
