#include "transformer/layer.h"

#include "tensor/ops.h"
#include "transformer/attention.h"
#include "transformer/ffn.h"

namespace voltage {

Tensor TransformerLayer::forward(const Tensor& x) const {
  Tensor attn = multi_head_attention(x, weights_.attention, config_);
  add_inplace(attn, x);
  const Tensor y = layernorm_rows(attn, weights_.ln_attention.gamma,
                                  weights_.ln_attention.beta);
  Tensor ffn = ffn_forward(y, weights_.ffn, config_.activation);
  add_inplace(ffn, y);
  return layernorm_rows(ffn, weights_.ln_ffn.gamma, weights_.ln_ffn.beta);
}

}  // namespace voltage
