#include "transformer/zoo.h"

namespace voltage {

ModelSpec bert_large_spec() {
  return ModelSpec{
      .name = "bert-large-uncased",
      .kind = ModelKind::kTextClassifier,
      .num_layers = 24,
      .layer = {.hidden = 1024,
                .heads = 16,
                .head_dim = 64,
                .ffn_dim = 4096,
                .activation = Activation::kGelu,
                .causal = false},
      .vocab_size = 30522,
      .max_positions = 512,
      .num_classes = 2,
  };
}

ModelSpec vit_base_spec() {
  return ModelSpec{
      .name = "vit-base-patch16-224",
      .kind = ModelKind::kImageClassifier,
      .num_layers = 12,
      .layer = {.hidden = 768,
                .heads = 12,
                .head_dim = 64,
                .ffn_dim = 3072,
                .activation = Activation::kGelu,
                .causal = false},
      .max_positions = 197,
      .num_classes = 1000,
      .image_size = 224,
      .patch_size = 16,
      .channels = 3,
  };
}

ModelSpec gpt2_spec() {
  return ModelSpec{
      .name = "gpt2",
      .kind = ModelKind::kCausalLm,
      .num_layers = 12,
      .layer = {.hidden = 768,
                .heads = 12,
                .head_dim = 64,
                .ffn_dim = 3072,
                .activation = Activation::kGelu,
                .causal = true},
      .vocab_size = 50257,
      .max_positions = 1024,
  };
}

ModelSpec bert_base_spec() {
  ModelSpec spec = bert_large_spec();
  spec.name = "bert-base-uncased";
  spec.num_layers = 12;
  spec.layer.hidden = 768;
  spec.layer.heads = 12;
  spec.layer.head_dim = 64;
  spec.layer.ffn_dim = 3072;
  return spec;
}

ModelSpec distilbert_spec() {
  ModelSpec spec = bert_base_spec();
  spec.name = "distilbert-base-uncased";
  spec.num_layers = 6;
  return spec;
}

ModelSpec gpt2_medium_spec() {
  ModelSpec spec = gpt2_spec();
  spec.name = "gpt2-medium";
  spec.num_layers = 24;
  spec.layer.hidden = 1024;
  spec.layer.heads = 16;
  spec.layer.head_dim = 64;
  spec.layer.ffn_dim = 4096;
  return spec;
}

ModelSpec vit_large_spec() {
  ModelSpec spec = vit_base_spec();
  spec.name = "vit-large-patch16-224";
  spec.num_layers = 24;
  spec.layer.hidden = 1024;
  spec.layer.heads = 16;
  spec.layer.head_dim = 64;
  spec.layer.ffn_dim = 4096;
  return spec;
}

std::size_t spec_parameter_count(const ModelSpec& spec) {
  spec.validate();
  const std::size_t f = spec.layer.hidden;
  const std::size_t fh = spec.layer.head_dim;
  const std::size_t h = spec.layer.heads;
  const std::size_t ffn = spec.layer.ffn_dim;
  // Per layer: Q/K/V (3 F x F_H per head), W_O + b_O, two LayerNorms,
  // W1 + b1 + W2 + b2 — mirrors LayerWeights::parameter_count().
  const std::size_t per_layer = 3 * h * f * fh + (h * fh) * f + f +
                                2 * (2 * f) + f * ffn + ffn + ffn * f + f;
  std::size_t total = spec.num_layers * per_layer;
  switch (spec.kind) {
    case ModelKind::kTextClassifier:
      total += spec.vocab_size * f + spec.max_positions * f;  // embeddings
      total += f * spec.num_classes + spec.num_classes;       // classifier
      break;
    case ModelKind::kCausalLm:
      total += spec.vocab_size * f + spec.max_positions * f;
      total += f * spec.vocab_size;  // untied LM head
      break;
    case ModelKind::kImageClassifier: {
      const std::size_t patch_dim =
          spec.patch_size * spec.patch_size * spec.channels;
      total += patch_dim * f + f + spec.vit_sequence_length() * f;
      total += f * spec.num_classes + spec.num_classes;
      break;
    }
  }
  return total;
}

ModelSpec mini_bert_spec() {
  return ModelSpec{
      .name = "mini-bert",
      .kind = ModelKind::kTextClassifier,
      .num_layers = 4,
      .layer = {.hidden = 128,
                .heads = 4,
                .head_dim = 32,
                .ffn_dim = 512,
                .activation = Activation::kGelu,
                .causal = false},
      .vocab_size = 1024,
      .max_positions = 128,
      .num_classes = 2,
  };
}

ModelSpec mini_vit_spec() {
  return ModelSpec{
      .name = "mini-vit",
      .kind = ModelKind::kImageClassifier,
      .num_layers = 4,
      .layer = {.hidden = 128,
                .heads = 4,
                .head_dim = 32,
                .ffn_dim = 512,
                .activation = Activation::kGelu,
                .causal = false},
      .max_positions = 17,
      .num_classes = 10,
      .image_size = 32,
      .patch_size = 8,
      .channels = 3,
  };
}

ModelSpec mini_gpt2_spec() {
  return ModelSpec{
      .name = "mini-gpt2",
      .kind = ModelKind::kCausalLm,
      .num_layers = 4,
      .layer = {.hidden = 128,
                .heads = 4,
                .head_dim = 32,
                .ffn_dim = 512,
                .activation = Activation::kGelu,
                .causal = true},
      .vocab_size = 1024,
      .max_positions = 128,
  };
}

TransformerModel make_model(const ModelSpec& spec, std::uint64_t seed) {
  return TransformerModel(spec, seed);
}

namespace {

std::vector<ModelSpec> all_specs() {
  return {bert_large_spec(), bert_base_spec(),   distilbert_spec(),
          gpt2_spec(),       gpt2_medium_spec(), vit_base_spec(),
          vit_large_spec(),  mini_bert_spec(),   mini_vit_spec(),
          mini_gpt2_spec()};
}

}  // namespace

std::optional<ModelSpec> spec_by_name(std::string_view name) {
  if (name == "bert") return bert_large_spec();
  if (name == "vit") return vit_base_spec();
  for (const ModelSpec& spec : all_specs()) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

std::vector<std::string> registered_spec_names() {
  std::vector<std::string> names;
  for (const ModelSpec& spec : all_specs()) names.push_back(spec.name);
  return names;
}

}  // namespace voltage
