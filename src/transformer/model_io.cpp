#include "transformer/model_io.h"

#include <stdexcept>

#include "tensor/archive.h"

namespace voltage {

void save_model(TransformerModel& model, const std::filesystem::path& path) {
  TensorArchive archive;
  model.visit_parameters([&archive](const std::string& name, Tensor& tensor) {
    archive.put(name, tensor);
  });
  archive.save(path);
}

void load_model(TransformerModel& model, const std::filesystem::path& path) {
  const TensorArchive archive = TensorArchive::load(path);
  std::size_t assigned = 0;
  model.visit_parameters([&](const std::string& name, Tensor& tensor) {
    if (!archive.contains(name)) {
      throw std::runtime_error("load_model: checkpoint misses " + name);
    }
    const Tensor& loaded = archive.get(name);
    if (!loaded.same_shape(tensor)) {
      throw std::runtime_error("load_model: shape mismatch for " + name);
    }
    tensor = loaded;
    ++assigned;
  });
  if (assigned != archive.size()) {
    throw std::runtime_error(
        "load_model: checkpoint has entries the model does not "
        "(architecture mismatch)");
  }
}

}  // namespace voltage
