#include "transformer/tokenizer.h"

#include <cctype>

#include "tensor/rng.h"

namespace voltage {

namespace {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

HashingTokenizer::HashingTokenizer(std::size_t vocab_size)
    : vocab_size_(vocab_size) {}

std::vector<TokenId> HashingTokenizer::encode(std::string_view text) const {
  std::vector<TokenId> tokens;
  std::size_t start = 0;
  while (start < text.size()) {
    while (start < text.size() &&
           std::isspace(static_cast<unsigned char>(text[start])) != 0) {
      ++start;
    }
    std::size_t end = start;
    while (end < text.size() &&
           std::isspace(static_cast<unsigned char>(text[end])) == 0) {
      ++end;
    }
    if (end > start) {
      tokens.push_back(static_cast<TokenId>(fnv1a(text.substr(start, end - start)) %
                                            vocab_size_));
    }
    start = end;
  }
  return tokens;
}

std::vector<TokenId> random_tokens(std::size_t count, std::size_t vocab_size,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TokenId> tokens(count);
  for (TokenId& t : tokens) {
    t = static_cast<TokenId>(rng.next_below(vocab_size));
  }
  return tokens;
}

Image random_image(std::size_t size, std::size_t channels, std::uint64_t seed) {
  Rng rng(seed);
  Image img(size, size, channels);
  for (float& p : img.pixels) p = rng.next_uniform();
  return img;
}

}  // namespace voltage
