#include "transformer/ffn.h"

#include "tensor/ops.h"

namespace voltage {

Tensor ffn_forward(const Tensor& x, const FfnWeights& w,
                   Activation activation) {
  Tensor hidden = matmul(x, w.w1);
  add_bias_inplace(hidden, w.b1);
  hidden = activation == Activation::kGelu ? gelu(hidden) : relu(hidden);
  Tensor out = matmul(hidden, w.w2);
  add_bias_inplace(out, w.b2);
  return out;
}

}  // namespace voltage
