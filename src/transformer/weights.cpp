#include "transformer/weights.h"

#include <cmath>

#include "tensor/rng.h"

namespace voltage {

std::size_t LayerWeights::parameter_count() const {
  std::size_t n = 0;
  for (const HeadWeights& h : attention.heads) {
    n += h.wq.size() + h.wk.size() + h.wv.size();
  }
  n += attention.wo.size() + attention.bo.size();
  n += ln_attention.gamma.size() + ln_attention.beta.size();
  n += ffn.w1.size() + ffn.b1.size() + ffn.w2.size() + ffn.b2.size();
  n += ln_ffn.gamma.size() + ln_ffn.beta.size();
  return n;
}

LayerWeights init_layer_weights(const LayerConfig& config, Rng& rng) {
  config.validate();
  const std::size_t f = config.hidden;
  const std::size_t fh = config.head_dim;
  // Scaled init keeps activations O(1) through deep stacks so latency
  // benchmarks never hit denormals and tests compare sane magnitudes.
  const float attn_std = 1.0F / std::sqrt(static_cast<float>(f));
  const float ffn_std = 1.0F / std::sqrt(static_cast<float>(config.ffn_dim));

  LayerWeights w;
  w.attention.heads.reserve(config.heads);
  for (std::size_t h = 0; h < config.heads; ++h) {
    w.attention.heads.push_back(HeadWeights{
        .wq = rng.normal_tensor(f, fh, attn_std),
        .wk = rng.normal_tensor(f, fh, attn_std),
        .wv = rng.normal_tensor(f, fh, attn_std),
    });
  }
  w.attention.wo = rng.normal_tensor(config.heads * fh, f, attn_std);
  w.attention.bo = Tensor(1, f);
  w.ln_attention = {.gamma = Tensor::filled(1, f, 1.0F), .beta = Tensor(1, f)};
  w.ffn = {
      .w1 = rng.normal_tensor(f, config.ffn_dim, attn_std),
      .b1 = Tensor(1, config.ffn_dim),
      .w2 = rng.normal_tensor(config.ffn_dim, f, ffn_std),
      .b2 = Tensor(1, f),
  };
  w.ln_ffn = {.gamma = Tensor::filled(1, f, 1.0F), .beta = Tensor(1, f)};
  return w;
}

void visit_layer_weights(LayerWeights& weights, const std::string& prefix,
                         const ParamVisitor& visit) {
  for (std::size_t h = 0; h < weights.attention.heads.size(); ++h) {
    const std::string head = prefix + ".attention.head." + std::to_string(h);
    visit(head + ".wq", weights.attention.heads[h].wq);
    visit(head + ".wk", weights.attention.heads[h].wk);
    visit(head + ".wv", weights.attention.heads[h].wv);
  }
  visit(prefix + ".attention.wo", weights.attention.wo);
  visit(prefix + ".attention.bo", weights.attention.bo);
  visit(prefix + ".ln_attention.gamma", weights.ln_attention.gamma);
  visit(prefix + ".ln_attention.beta", weights.ln_attention.beta);
  visit(prefix + ".ffn.w1", weights.ffn.w1);
  visit(prefix + ".ffn.b1", weights.ffn.b1);
  visit(prefix + ".ffn.w2", weights.ffn.w2);
  visit(prefix + ".ffn.b2", weights.ffn.b2);
  visit(prefix + ".ln_ffn.gamma", weights.ln_ffn.gamma);
  visit(prefix + ".ln_ffn.beta", weights.ln_ffn.beta);
}

}  // namespace voltage
