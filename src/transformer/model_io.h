// Model checkpointing: save every parameter to a TensorArchive on disk and
// load it back into an architecturally identical model. Voltage's latency
// results hold for random weights; checkpointing is what lets a deployment
// carry real (e.g. converted pretrained) weights instead.
#pragma once

#include <filesystem>

#include "transformer/model.h"

namespace voltage {

// Writes every parameter under its hierarchical name, plus nothing else —
// the spec travels out of band (construct the model first, then load).
void save_model(TransformerModel& model, const std::filesystem::path& path);

// Strict load: every model parameter must be present with the exact shape;
// extra archive entries are rejected too (they indicate a spec mismatch).
// Throws std::runtime_error on any discrepancy.
void load_model(TransformerModel& model, const std::filesystem::path& path);

}  // namespace voltage
