#include "transformer/model.h"

#include <stdexcept>

#include "tensor/rng.h"
#include "transformer/weights.h"

namespace voltage {

TransformerModel::TransformerModel(ModelSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)) {
  spec_.validate();
  Rng rng(seed);

  switch (spec_.kind) {
    case ModelKind::kTextClassifier:
    case ModelKind::kCausalLm:
      token_embedding_.emplace(spec_.vocab_size, spec_.max_positions,
                               spec_.layer.hidden, rng);
      break;
    case ModelKind::kImageClassifier:
      patch_embedding_.emplace(spec_.image_size, spec_.patch_size,
                               spec_.channels, spec_.layer.hidden, rng);
      break;
  }

  layers_.reserve(spec_.num_layers);
  for (std::size_t i = 0; i < spec_.num_layers; ++i) {
    layers_.emplace_back(spec_.layer, init_layer_weights(spec_.layer, rng));
  }

  switch (spec_.kind) {
    case ModelKind::kTextClassifier:
    case ModelKind::kImageClassifier:
      classifier_.emplace(spec_.layer.hidden, spec_.num_classes,
                          Pooling::kClsToken, rng);
      break;
    case ModelKind::kCausalLm:
      lm_head_.emplace(spec_.layer.hidden, spec_.vocab_size, rng);
      break;
  }
}

Tensor TransformerModel::preprocess(std::span<const TokenId> tokens) const {
  if (!token_embedding_) {
    throw std::logic_error("preprocess(tokens): not a text model");
  }
  return token_embedding_->embed(tokens);
}

Tensor TransformerModel::preprocess_at(std::span<const TokenId> tokens,
                                       std::size_t start) const {
  if (!token_embedding_) {
    throw std::logic_error("preprocess_at: not a text model");
  }
  return token_embedding_->embed_at(tokens, start);
}

Tensor TransformerModel::preprocess(const Image& image) const {
  if (!patch_embedding_) {
    throw std::logic_error("preprocess(image): not a vision model");
  }
  return patch_embedding_->embed(image);
}

Tensor TransformerModel::forward_layers(Tensor x) const {
  for (const TransformerLayer& layer : layers_) {
    x = layer.forward(x);
  }
  return x;
}

Tensor TransformerModel::postprocess(const Tensor& hidden_states) const {
  if (classifier_) return classifier_->forward(hidden_states);
  if (lm_head_) return lm_head_->forward_last(hidden_states);
  throw std::logic_error("postprocess: model has no head");
}

Tensor TransformerModel::postprocess_rows(const Tensor& hidden_states) const {
  if (!lm_head_) {
    throw std::logic_error("postprocess_rows: needs a causal LM head");
  }
  return lm_head_->forward_rows(hidden_states);
}

Tensor TransformerModel::infer(std::span<const TokenId> tokens) const {
  return postprocess(forward_layers(preprocess(tokens)));
}

Tensor TransformerModel::infer(const Image& image) const {
  return postprocess(forward_layers(preprocess(image)));
}

void TransformerModel::visit_parameters(const ParamVisitor& visit) {
  if (token_embedding_) {
    token_embedding_->visit_parameters("embedding.token", visit);
  }
  if (patch_embedding_) {
    patch_embedding_->visit_parameters("embedding.patch", visit);
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    visit_layer_weights(layers_[l].mutable_weights(),
                        "layer." + std::to_string(l), visit);
  }
  if (classifier_) classifier_->visit_parameters("head.classifier", visit);
  if (lm_head_) lm_head_->visit_parameters("head.lm", visit);
}

std::size_t TransformerModel::parameter_count() const {
  std::size_t n = 0;
  if (token_embedding_) n += token_embedding_->parameter_count();
  if (patch_embedding_) n += patch_embedding_->parameter_count();
  for (const TransformerLayer& layer : layers_) {
    n += layer.weights().parameter_count();
  }
  if (classifier_) n += classifier_->parameter_count();
  if (lm_head_) n += lm_head_->parameter_count();
  return n;
}

}  // namespace voltage
