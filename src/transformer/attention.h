// Full-sequence multi-head self-attention (the single-device baseline).
//
// The partitioned/reordered variants used by Voltage live in
// src/partition/partitioned_attention.h; this file is the reference
// implementation they are tested against.
#pragma once

#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

// Masks scores[i][j] for j > row_offset + i to a large negative value.
// `row_offset` is the global position of scores row 0, which lets the same
// mask serve both full (offset 0, square) and partitioned (P x N) scores.
void apply_causal_mask(Tensor& scores, std::size_t row_offset);

// Attn(xW_Q, xW_K, xW_V) for one head over the full sequence — paper Eq. (1).
[[nodiscard]] Tensor attention_head_full(const Tensor& x, const HeadWeights& w,
                                         std::size_t head_dim, bool causal);

// MultiHead(x) = Concat(A_1(x), ..., A_H(x)) W_O + b_O — paper Eq. (2).
[[nodiscard]] Tensor multi_head_attention(const Tensor& x,
                                          const AttentionWeights& w,
                                          const LayerConfig& config);

}  // namespace voltage
