// Incremental autoregressive decoding with per-layer KV caches.
//
// The paper's position partition accelerates the *prefill* (the full-
// sequence forward that dominates classification and the first token of
// generation). For subsequent tokens the input is a single position, so the
// natural companion is the standard KV-cache decode path: each layer stores
// the K and V rows of every past position and each new token costs O(T)
// attention instead of O(T^2) recompute. This decoder provides that path
// and is verified token-for-token against full recomputation.
#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "transformer/model.h"

namespace voltage {

// Cached keys/values of one attention head (rows grow with the sequence).
struct HeadKvCache {
  Tensor k;  // T x F_H
  Tensor v;  // T x F_H
};

struct LayerKvCache {
  std::vector<HeadKvCache> heads;
};

class IncrementalDecoder {
 public:
  // Requires a causal LM (ModelKind::kCausalLm); throws otherwise.
  explicit IncrementalDecoder(const TransformerModel& model);

  // Runs the full prompt through the stack once, filling every cache, and
  // returns next-token logits [1 x vocab].
  [[nodiscard]] Tensor prime(std::span<const TokenId> prompt);

  // Appends one token and returns next-token logits; costs O(T) per layer.
  [[nodiscard]] Tensor step(TokenId token);

  // Appends several committed tokens at once (e.g. an extended prompt) and
  // returns the logits after the last one. One multi-row pass through the
  // stack — the caches grow exactly as if each token had been step()ed, but
  // without a per-token traversal, and crucially without the full
  // reset-and-re-prefill that used to be the only way to continue from a
  // lengthened prompt.
  [[nodiscard]] Tensor extend(std::span<const TokenId> tokens);

  // Forgets every cached position >= `position` — the speculative drafting
  // rewind: a drafter runs greedy steps ahead, then rolls back to the last
  // committed position once the distributed verifier has judged the drafts.
  // No-op when already at `position`; throws std::invalid_argument when
  // asked to roll forward.
  void rollback(std::size_t position);

  // Forgets all cached state (start a new sequence).
  void reset();

  [[nodiscard]] std::size_t position() const noexcept { return position_; }

 private:
  // Feeds embedded rows [m x F] whose global positions start at position_.
  [[nodiscard]] Tensor feed(Tensor x);

  const TransformerModel& model_;
  std::vector<LayerKvCache> caches_;
  std::size_t position_ = 0;
};

}  // namespace voltage
