// Toy deterministic tokenizer for the examples.
//
// The paper feeds "a random string with 200 words" to BERT/GPT-2; latency is
// independent of which ids those words map to, so a hashing tokenizer (one
// id per whitespace-separated word, FNV-1a modulo vocabulary) is a faithful
// stand-in for WordPiece/BPE here. It is NOT a linguistic tokenizer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "transformer/embedding.h"

namespace voltage {

class HashingTokenizer {
 public:
  explicit HashingTokenizer(std::size_t vocab_size);

  // One token per whitespace-separated word.
  [[nodiscard]] std::vector<TokenId> encode(std::string_view text) const;

  [[nodiscard]] std::size_t vocab_size() const noexcept { return vocab_size_; }

 private:
  std::size_t vocab_size_;
};

// `count` deterministic pseudo-random tokens in [0, vocab) — the paper's
// random-string workload.
[[nodiscard]] std::vector<TokenId> random_tokens(std::size_t count,
                                                 std::size_t vocab_size,
                                                 std::uint64_t seed);

// Deterministic pseudo-random image (the paper's 224x224 ViT input).
[[nodiscard]] Image random_image(std::size_t size, std::size_t channels,
                                 std::uint64_t seed);

}  // namespace voltage
