// Linformer-style low-rank attention and its position-wise distribution —
// the second §VII-C variant ("Linformer proposes to approximate the
// original attention function through low-rank matrix multiplications...
// Voltage can be easily extended to distribute them").
//
// Linformer projects keys and values along the SEQUENCE dimension with
// learned E, F ∈ R^{k x N} (k << N):
//   K' = E (x W_K) ∈ R^{k x F_H},   V' = F (x W_V) ∈ R^{k x F_H},
//   Attn(x)_p = softmax((x_p W_Q) K'^T / sqrt(F_H)) V'.
// Because E(xW_K) = Σ_j E[:, j] ⊗ (x_j W_K) is a SUM over positions, each
// device can build the (K', V') contribution of its own positions and a
// tiny 2·k·F_H-per-head all-reduce replaces the N·F activation all-gather —
// the same distribution pattern as linear attention, with a k x N low-rank
// bottleneck instead of a kernel feature map.
#pragma once

#include <vector>

#include "partition/range.h"
#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

class Rng;

// Shared-across-heads sequence projections (Linformer's parameter-sharing
// variant): E, F ∈ R^{k x max_positions}; inputs of length N <= max use the
// first N columns.
struct LinformerProjections {
  Tensor e;  // k x max_positions
  Tensor f;  // k x max_positions

  [[nodiscard]] std::size_t rank() const noexcept { return e.rows(); }
  [[nodiscard]] std::size_t max_positions() const noexcept {
    return e.cols();
  }
};

[[nodiscard]] LinformerProjections init_linformer_projections(
    std::size_t rank, std::size_t max_positions, Rng& rng);

// Per-head distributable summary of a set of positions.
struct LinformerState {
  Tensor k_proj;  // k x F_H : E[:, p] (x_p W_K)
  Tensor v_proj;  // k x F_H : F[:, p] (x_p W_V)

  LinformerState& operator+=(const LinformerState& other);
};

// Summary of positions [p.begin, p.end) for one head.
[[nodiscard]] LinformerState linformer_local_state(
    const Tensor& x, Range p, const HeadWeights& w,
    const LinformerProjections& proj);

// Output rows for partition `p` given the GLOBAL (summed) state.
[[nodiscard]] Tensor linformer_head_partition(const Tensor& x, Range p,
                                              const HeadWeights& w,
                                              std::size_t head_dim,
                                              const LinformerState& state);

// Reference: full-sequence single-head Linformer attention.
[[nodiscard]] Tensor linformer_head_full(const Tensor& x,
                                         const HeadWeights& w,
                                         std::size_t head_dim,
                                         const LinformerProjections& proj);

// Elements a device must synchronize per layer (all heads): 2·H·k·F_H —
// compare against the softmax path's (K-1)/K·N·F all-gather.
[[nodiscard]] std::uint64_t linformer_sync_elements(const LayerConfig& config,
                                                    std::size_t rank);

}  // namespace voltage
