// Token sampling strategies for autoregressive generation, plus a
// generation driver over the KV-cache decoder.
#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "transformer/decoder.h"

namespace voltage {

class Rng;

struct SamplingConfig {
  // 0 = greedy argmax. Otherwise sample from the top_k most likely tokens.
  std::size_t top_k = 0;
  // Softmax temperature; < 1 sharpens, > 1 flattens. Ignored for greedy.
  float temperature = 1.0F;
};

// Argmax over a [1 x vocab] logits row.
[[nodiscard]] TokenId greedy_sample(const Tensor& logits);

// Samples from the temperature-scaled softmax restricted to the top-k
// logits. top_k == 1 degenerates to greedy. Throws on bad arguments.
[[nodiscard]] TokenId sample_top_k(const Tensor& logits, std::size_t top_k,
                                   float temperature, Rng& rng);

// Generates `count` tokens continuing `prompt` with the cached decoder.
[[nodiscard]] std::vector<TokenId> generate(IncrementalDecoder& decoder,
                                            std::span<const TokenId> prompt,
                                            std::size_t count,
                                            const SamplingConfig& config,
                                            Rng& rng);

}  // namespace voltage
