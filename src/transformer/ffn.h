// Position-wise feed-forward network: FFN(x) = Act(xW1 + b1)W2 + b2.
#pragma once

#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

[[nodiscard]] Tensor ffn_forward(const Tensor& x, const FfnWeights& w,
                                 Activation activation);

}  // namespace voltage
