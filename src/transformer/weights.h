// Weight containers for a transformer layer.
//
// Attention projections are stored per head (W_Q^i, W_K^i, W_V^i in F x F_H)
// because Voltage's adaptive order selection (Theorem 2) operates per head.
// Following the paper's Eq. (1), the Q/K/V projections carry no bias; the
// output projection W_O and the FFN keep theirs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "transformer/config.h"

namespace voltage {

struct HeadWeights {
  Tensor wq;  // F x F_H
  Tensor wk;  // F x F_H
  Tensor wv;  // F x F_H
};

struct AttentionWeights {
  std::vector<HeadWeights> heads;
  Tensor wo;  // (H * F_H) x F
  Tensor bo;  // 1 x F
};

struct FfnWeights {
  Tensor w1;  // F x ffn_dim
  Tensor b1;  // 1 x ffn_dim
  Tensor w2;  // ffn_dim x F
  Tensor b2;  // 1 x F
};

struct LayerNormWeights {
  Tensor gamma;  // 1 x F
  Tensor beta;   // 1 x F
};

struct LayerWeights {
  AttentionWeights attention;
  LayerNormWeights ln_attention;  // post-attention LayerNorm (paper Fig. 1)
  FfnWeights ffn;
  LayerNormWeights ln_ffn;  // post-FFN LayerNorm

  // Total parameter count (used for memory reporting).
  [[nodiscard]] std::size_t parameter_count() const;
};

class Rng;

// Deterministic random initialization matching the shapes of `config`.
[[nodiscard]] LayerWeights init_layer_weights(const LayerConfig& config,
                                              Rng& rng);

// Named visitation over every parameter tensor — the hook checkpointing
// (transformer/model_io.h) is built on. Names are hierarchical, e.g.
// "<prefix>.attention.head.2.wq".
using ParamVisitor =
    std::function<void(const std::string& name, Tensor& tensor)>;

void visit_layer_weights(LayerWeights& weights, const std::string& prefix,
                         const ParamVisitor& visit);

}  // namespace voltage
