// Layer and model configuration for the transformer substrate.
//
// Notation follows the paper: F = model feature width, H = attention heads,
// F_H = per-head attention dimension, with the usual H * F_H = F.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace voltage {

enum class Activation : std::uint8_t { kRelu, kGelu };

struct LayerConfig {
  std::size_t hidden = 0;    // F
  std::size_t heads = 0;     // H
  std::size_t head_dim = 0;  // F_H
  std::size_t ffn_dim = 0;   // inner width of the position-wise FFN
  Activation activation = Activation::kGelu;
  // Decoder-style (GPT) layers mask attention to future positions.
  bool causal = false;

  void validate() const {
    if (hidden == 0 || heads == 0 || head_dim == 0 || ffn_dim == 0) {
      throw std::invalid_argument("LayerConfig: zero dimension");
    }
    if (heads * head_dim != hidden) {
      // The paper's multi-head analysis (Theorem 2) assumes H * F_H = F.
      throw std::invalid_argument("LayerConfig: heads * head_dim != hidden");
    }
  }
};

enum class ModelKind : std::uint8_t {
  kTextClassifier,   // BERT-style encoder + classification head
  kImageClassifier,  // ViT-style patch encoder + classification head
  kCausalLm,         // GPT-style decoder + LM head
};

struct ModelSpec {
  std::string name;
  ModelKind kind = ModelKind::kTextClassifier;
  std::size_t num_layers = 0;
  LayerConfig layer;
  std::size_t vocab_size = 0;     // text models
  std::size_t max_positions = 0;  // learned positional table size
  std::size_t num_classes = 0;    // classifier models
  // ViT only: image geometry.
  std::size_t image_size = 0;
  std::size_t patch_size = 0;
  std::size_t channels = 3;

  void validate() const {
    layer.validate();
    if (num_layers == 0) throw std::invalid_argument("ModelSpec: no layers");
    if (kind == ModelKind::kImageClassifier) {
      if (patch_size == 0 || image_size % patch_size != 0) {
        throw std::invalid_argument("ModelSpec: bad patch geometry");
      }
    } else if (vocab_size == 0) {
      throw std::invalid_argument("ModelSpec: text model needs a vocabulary");
    }
  }

  // Sequence length seen by the transformer stack for a ViT input
  // (patches + [CLS]).
  [[nodiscard]] std::size_t vit_sequence_length() const {
    const std::size_t per_side = image_size / patch_size;
    return per_side * per_side + 1;
  }
};

}  // namespace voltage
