#include "transformer/linear_attention.h"

#include <cmath>
#include <stdexcept>

#include "tensor/flops.h"
#include "tensor/ops.h"

namespace voltage {

Tensor linear_attention_feature_map(const Tensor& x) {
  Tensor out = x;
  for (float& v : out.flat()) {
    v = v > 0.0F ? v + 1.0F : std::exp(v);
  }
  flops::add_elementwise(2 * x.size());
  return out;
}

LinearAttentionState& LinearAttentionState::operator+=(
    const LinearAttentionState& other) {
  add_inplace(s, other.s);
  add_inplace(z, other.z);
  return *this;
}

LinearAttentionState linear_attention_local_state(const Tensor& x, Range p,
                                                  const HeadWeights& w) {
  if (p.end > x.rows()) {
    throw std::out_of_range("linear_attention_local_state: bad range");
  }
  const Tensor xp = x.slice_rows(p.begin, p.end);
  const Tensor k = linear_attention_feature_map(matmul(xp, w.wk));
  const Tensor v = matmul(xp, w.wv);
  LinearAttentionState state;
  state.s = matmul(k, v, Trans::kYes, Trans::kNo);  // F_H x F_H
  state.z = Tensor(1, k.cols());
  for (std::size_t r = 0; r < k.rows(); ++r) {
    const auto row = k.row(r);
    auto acc = state.z.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) acc[c] += row[c];
  }
  flops::add_elementwise(k.size());
  return state;
}

Tensor linear_attention_head_partition(const Tensor& x, Range p,
                                       const HeadWeights& w,
                                       const LinearAttentionState& state) {
  if (p.end > x.rows()) {
    throw std::out_of_range("linear_attention_head_partition: bad range");
  }
  const Tensor xp = x.slice_rows(p.begin, p.end);
  const Tensor q = linear_attention_feature_map(matmul(xp, w.wq));
  Tensor out = matmul(q, state.s);          // P x F_H
  const Tensor norm = matmul(q, state.z, Trans::kNo, Trans::kYes);  // P x 1
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const float inv = 1.0F / norm(r, 0);
    for (float& v : out.row(r)) v *= inv;
  }
  flops::add_elementwise(out.size());
  return out;
}

Tensor linear_attention_head_full(const Tensor& x, const HeadWeights& w) {
  const Range all{0, x.rows()};
  return linear_attention_head_partition(
      x, all, w, linear_attention_local_state(x, all, w));
}

Tensor multi_head_linear_attention(const Tensor& x, const AttentionWeights& w,
                                   const LayerConfig& config) {
  std::vector<Tensor> heads;
  heads.reserve(w.heads.size());
  for (const HeadWeights& head : w.heads) {
    heads.push_back(linear_attention_head_full(x, head));
  }
  Tensor out = matmul(concat_cols(heads), w.wo);
  add_bias_inplace(out, w.bo);
  (void)config;
  return out;
}

std::vector<LinearAttentionState> multi_head_linear_states(
    const Tensor& x, Range p, const AttentionWeights& w,
    const LayerConfig& config) {
  if (config.causal) {
    throw std::invalid_argument(
        "linear attention distribution supports encoder layers only");
  }
  std::vector<LinearAttentionState> states;
  states.reserve(w.heads.size());
  for (const HeadWeights& head : w.heads) {
    states.push_back(linear_attention_local_state(x, p, head));
  }
  return states;
}

Tensor multi_head_linear_attention_partition(
    const Tensor& x, Range p, const AttentionWeights& w,
    const LayerConfig& config,
    const std::vector<LinearAttentionState>& global_states) {
  if (global_states.size() != w.heads.size()) {
    throw std::invalid_argument(
        "multi_head_linear_attention_partition: one state per head required");
  }
  if (p.empty()) return Tensor(0, config.hidden);
  std::vector<Tensor> heads;
  heads.reserve(w.heads.size());
  for (std::size_t h = 0; h < w.heads.size(); ++h) {
    heads.push_back(linear_attention_head_partition(x, p, w.heads[h],
                                                    global_states[h]));
  }
  Tensor out = matmul(concat_cols(heads), w.wo);
  add_bias_inplace(out, w.bo);
  return out;
}

std::uint64_t linear_attention_sync_elements(const LayerConfig& config) {
  return static_cast<std::uint64_t>(config.heads) * config.head_dim *
         (config.head_dim + 1);
}

}  // namespace voltage
