#include "transformer/linformer.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace voltage {

LinformerProjections init_linformer_projections(std::size_t rank,
                                                std::size_t max_positions,
                                                Rng& rng) {
  if (rank == 0 || max_positions == 0) {
    throw std::invalid_argument("LinformerProjections: zero dimension");
  }
  const float std =
      1.0F / std::sqrt(static_cast<float>(max_positions));
  return LinformerProjections{
      .e = rng.normal_tensor(rank, max_positions, std),
      .f = rng.normal_tensor(rank, max_positions, std),
  };
}

LinformerState& LinformerState::operator+=(const LinformerState& other) {
  add_inplace(k_proj, other.k_proj);
  add_inplace(v_proj, other.v_proj);
  return *this;
}

LinformerState linformer_local_state(const Tensor& x, Range p,
                                     const HeadWeights& w,
                                     const LinformerProjections& proj) {
  if (p.end > x.rows()) {
    throw std::out_of_range("linformer_local_state: bad range");
  }
  if (x.rows() > proj.max_positions()) {
    throw std::invalid_argument(
        "linformer_local_state: sequence exceeds projection width");
  }
  const Tensor xp = x.slice_rows(p.begin, p.end);
  const Tensor e_cols = proj.e.slice_cols(p.begin, p.end);  // k x P
  const Tensor f_cols = proj.f.slice_cols(p.begin, p.end);  // k x P
  return LinformerState{
      .k_proj = matmul(e_cols, matmul(xp, w.wk)),
      .v_proj = matmul(f_cols, matmul(xp, w.wv)),
  };
}

Tensor linformer_head_partition(const Tensor& x, Range p,
                                const HeadWeights& w, std::size_t head_dim,
                                const LinformerState& state) {
  if (p.end > x.rows()) {
    throw std::out_of_range("linformer_head_partition: bad range");
  }
  const Tensor xp = x.slice_rows(p.begin, p.end);
  const Tensor q = matmul(xp, w.wq);                          // P x F_H
  const Tensor scores =
      matmul(q, state.k_proj, Trans::kNo, Trans::kYes);       // P x k
  const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(head_dim));
  return matmul(softmax_rows(scores, inv_sqrt), state.v_proj);
}

Tensor linformer_head_full(const Tensor& x, const HeadWeights& w,
                           std::size_t head_dim,
                           const LinformerProjections& proj) {
  const Range all{0, x.rows()};
  return linformer_head_partition(
      x, all, w, head_dim, linformer_local_state(x, all, w, proj));
}

std::uint64_t linformer_sync_elements(const LayerConfig& config,
                                      std::size_t rank) {
  return 2ULL * config.heads * rank * config.head_dim;
}

}  // namespace voltage
