// Linear (kernelized) attention and its position-wise distribution — the
// extension the paper sketches in §VII-C for linear-transformer variants
// (Katharopoulos et al., "Transformers are RNNs").
//
// With feature map φ(u) = elu(u) + 1 > 0:
//   Attn_lin(x)_i = φ(q_i)^T S / (φ(q_i)^T z),   S = Σ_j φ(k_j) v_j^T,
//                                                z = Σ_j φ(k_j).
// S ∈ R^{F_H x F_H} and z ∈ R^{F_H} are SUMS over positions, so a position
// partition distributes perfectly: each device builds the (S, z) summary of
// ITS positions, the K summaries are all-reduce-summed (a tensor of
// F_H x (F_H + 1) per head — independent of N!), and every device finishes
// its output partition locally. Per-layer communication drops from the
// softmax path's Θ(N·F) activations to Θ(H·F_H²).
//
// Bidirectional (encoder) attention only; causal linear attention needs
// per-position prefix states, which do not partition by position.
#pragma once

#include <vector>

#include "partition/range.h"
#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

// φ(u) = elu(u) + 1, applied elementwise; output is strictly positive so
// the normalizer can never vanish.
[[nodiscard]] Tensor linear_attention_feature_map(const Tensor& x);

// The distributable per-head summary of a set of positions.
struct LinearAttentionState {
  Tensor s;  // F_H x F_H : Σ φ(k_j) v_j^T
  Tensor z;  // 1 x F_H   : Σ φ(k_j)

  // Elementwise sum — the all-reduce combiner.
  LinearAttentionState& operator+=(const LinearAttentionState& other);

  [[nodiscard]] std::size_t element_count() const noexcept {
    return s.size() + z.size();
  }
};

// Summary of positions [p.begin, p.end) for one head.
[[nodiscard]] LinearAttentionState linear_attention_local_state(
    const Tensor& x, Range p, const HeadWeights& w);

// Output rows for partition `p` of one head given the GLOBAL state.
[[nodiscard]] Tensor linear_attention_head_partition(
    const Tensor& x, Range p, const HeadWeights& w,
    const LinearAttentionState& global_state);

// Reference: full-sequence single-head linear attention.
[[nodiscard]] Tensor linear_attention_head_full(const Tensor& x,
                                                const HeadWeights& w);

// Full multi-head linear attention with the W_O projection (drop-in
// replacement for multi_head_attention on encoder layers).
[[nodiscard]] Tensor multi_head_linear_attention(const Tensor& x,
                                                 const AttentionWeights& w,
                                                 const LayerConfig& config);

// Distributed flavour: per-head states for this device's range...
[[nodiscard]] std::vector<LinearAttentionState> multi_head_linear_states(
    const Tensor& x, Range p, const AttentionWeights& w,
    const LayerConfig& config);
// ...then, after states are all-reduced, the device's output partition.
[[nodiscard]] Tensor multi_head_linear_attention_partition(
    const Tensor& x, Range p, const AttentionWeights& w,
    const LayerConfig& config,
    const std::vector<LinearAttentionState>& global_states);

// Per-layer elements a device must synchronize: softmax Voltage all-gathers
// its activation partition; linear attention all-reduces H tiny states.
[[nodiscard]] std::uint64_t linear_attention_sync_elements(
    const LayerConfig& config);

}  // namespace voltage
