#include "transformer/attention.h"

#include <cmath>
#include <vector>

#include "core/thread_pool.h"
#include "tensor/ops.h"

namespace voltage {

void apply_causal_mask(Tensor& scores, std::size_t row_offset) {
  // -1e30 survives the softmax pre-scale and underflows exp() to exactly 0.
  constexpr float kMasked = -1e30F;
  for (std::size_t i = 0; i < scores.rows(); ++i) {
    const std::size_t first_masked = row_offset + i + 1;
    auto row = scores.row(i);
    for (std::size_t j = first_masked; j < row.size(); ++j) row[j] = kMasked;
  }
}

Tensor attention_head_full(const Tensor& x, const HeadWeights& w,
                           std::size_t head_dim, bool causal) {
  const Tensor q = matmul(x, w.wq);
  const Tensor k = matmul(x, w.wk);
  const Tensor v = matmul(x, w.wv);
  Tensor scores = matmul(q, k, Trans::kNo, Trans::kYes);
  if (causal) apply_causal_mask(scores, 0);
  const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(head_dim));
  const Tensor probs = softmax_rows(scores, inv_sqrt);
  return matmul(probs, v);
}

Tensor multi_head_attention(const Tensor& x, const AttentionWeights& w,
                            const LayerConfig& config) {
  // Heads are independent; each slot is written by exactly one chunk and a
  // head's own FP chains are untouched by the split, so the concatenated
  // result is bitwise identical at any intra-op thread count.
  std::vector<Tensor> head_outputs(w.heads.size());
  parallel_for(std::size_t{0}, w.heads.size(), std::size_t{1},
               [&](std::size_t h0, std::size_t h1) {
                 for (std::size_t h = h0; h < h1; ++h) {
                   head_outputs[h] = attention_head_full(
                       x, w.heads[h], config.head_dim, config.causal);
                 }
               });
  Tensor out = matmul(concat_cols(head_outputs), w.wo);
  add_bias_inplace(out, w.bo);
  return out;
}

}  // namespace voltage
