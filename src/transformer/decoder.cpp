#include "transformer/decoder.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "transformer/attention.h"
#include "transformer/ffn.h"

namespace voltage {

IncrementalDecoder::IncrementalDecoder(const TransformerModel& model)
    : model_(model) {
  if (model.spec().kind != ModelKind::kCausalLm) {
    throw std::invalid_argument("IncrementalDecoder: needs a causal LM");
  }
  reset();
}

void IncrementalDecoder::reset() {
  caches_.assign(model_.spec().num_layers, LayerKvCache{});
  for (LayerKvCache& cache : caches_) {
    cache.heads.resize(model_.spec().layer.heads);
  }
  position_ = 0;
}

Tensor IncrementalDecoder::feed(Tensor x) {
  const auto layers = model_.layers();
  const float inv_sqrt =
      1.0F / std::sqrt(static_cast<float>(model_.spec().layer.head_dim));

  for (std::size_t l = 0; l < layers.size(); ++l) {
    const LayerConfig& cfg = layers[l].config();
    const LayerWeights& w = layers[l].weights();
    LayerKvCache& cache = caches_[l];

    std::vector<Tensor> head_outputs;
    head_outputs.reserve(cfg.heads);
    for (std::size_t h = 0; h < cfg.heads; ++h) {
      const HeadWeights& hw = w.attention.heads[h];
      HeadKvCache& hc = cache.heads[h];
      const Tensor q = matmul(x, hw.wq);
      const Tensor k_new = matmul(x, hw.wk);
      const Tensor v_new = matmul(x, hw.wv);
      // Extend the cache with this block's keys/values.
      if (hc.k.rows() == 0) {
        hc.k = k_new;
        hc.v = v_new;
      } else {
        const std::vector<Tensor> ks{hc.k, k_new};
        const std::vector<Tensor> vs{hc.v, v_new};
        hc.k = concat_rows(ks);
        hc.v = concat_rows(vs);
      }
      // Attend over everything cached; rows of x start at position_, so
      // the causal mask offsets accordingly (prefill feeds m > 1 rows).
      Tensor scores = matmul(q, hc.k, Trans::kNo, Trans::kYes);
      apply_causal_mask(scores, position_);
      head_outputs.push_back(matmul(softmax_rows(scores, inv_sqrt), hc.v));
    }
    Tensor attn = matmul(concat_cols(head_outputs), w.attention.wo);
    add_bias_inplace(attn, w.attention.bo);
    add_inplace(attn, x);
    const Tensor y =
        layernorm_rows(attn, w.ln_attention.gamma, w.ln_attention.beta);
    Tensor f = ffn_forward(y, w.ffn, cfg.activation);
    add_inplace(f, y);
    x = layernorm_rows(f, w.ln_ffn.gamma, w.ln_ffn.beta);
  }
  position_ += x.rows();
  return model_.postprocess(x);
}

Tensor IncrementalDecoder::prime(std::span<const TokenId> prompt) {
  if (prompt.empty()) {
    throw std::invalid_argument("IncrementalDecoder: empty prompt");
  }
  if (position_ != 0) reset();
  return feed(model_.preprocess(prompt));
}

Tensor IncrementalDecoder::extend(std::span<const TokenId> tokens) {
  if (tokens.empty()) {
    throw std::invalid_argument("IncrementalDecoder: empty extension");
  }
  if (position_ == 0) {
    throw std::logic_error("IncrementalDecoder: prime() before extend()");
  }
  if (position_ + tokens.size() > model_.spec().max_positions) {
    throw std::length_error("IncrementalDecoder: context window exhausted");
  }
  // feed() already handles multi-row blocks (the prefill is one); the rows
  // embed at their true global positions and the causal mask offsets by
  // position_, so this is the prime() code path continued mid-sequence.
  return feed(model_.preprocess_at(tokens, position_));
}

void IncrementalDecoder::rollback(std::size_t position) {
  if (position > position_) {
    throw std::invalid_argument("IncrementalDecoder: rollback past the end");
  }
  if (position == position_) return;
  for (LayerKvCache& cache : caches_) {
    for (HeadKvCache& hc : cache.heads) {
      hc.k = hc.k.slice_rows(0, position);
      hc.v = hc.v.slice_rows(0, position);
    }
  }
  position_ = position;
}

Tensor IncrementalDecoder::step(TokenId token) {
  if (position_ == 0) {
    throw std::logic_error("IncrementalDecoder: prime() before step()");
  }
  if (position_ + 1 > model_.spec().max_positions) {
    throw std::length_error("IncrementalDecoder: context window exhausted");
  }
  // Embed just the new token at its true global position.
  const TokenId ids[] = {token};
  return feed(model_.preprocess_at(std::span<const TokenId>(ids), position_));
}

}  // namespace voltage
