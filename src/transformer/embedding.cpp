#include "transformer/embedding.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace voltage {

TokenEmbedding::TokenEmbedding(std::size_t vocab_size,
                               std::size_t max_positions, std::size_t hidden,
                               Rng& rng)
    : table_(rng.normal_tensor(vocab_size, hidden, 0.02F)),
      positions_(rng.normal_tensor(max_positions, hidden, 0.02F)) {}

Tensor TokenEmbedding::embed_at(std::span<const TokenId> tokens,
                                std::size_t start) const {
  if (start + tokens.size() > positions_.rows()) {
    throw std::invalid_argument("TokenEmbedding: sequence too long");
  }
  Tensor out(tokens.size(), table_.cols());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const TokenId id = tokens[i];
    if (id < 0 || static_cast<std::size_t>(id) >= table_.rows()) {
      throw std::out_of_range("TokenEmbedding: token id out of vocabulary");
    }
    const auto tok = table_.row(static_cast<std::size_t>(id));
    const auto pos = positions_.row(start + i);
    auto o = out.row(i);
    for (std::size_t c = 0; c < o.size(); ++c) o[c] = tok[c] + pos[c];
  }
  return out;
}

PatchEmbedding::PatchEmbedding(std::size_t image_size, std::size_t patch_size,
                               std::size_t channels, std::size_t hidden,
                               Rng& rng)
    : image_size_(image_size),
      patch_size_(patch_size),
      channels_(channels),
      projection_(rng.normal_tensor(patch_size * patch_size * channels, hidden,
                                    0.02F)),
      cls_token_(rng.normal_tensor(1, hidden, 0.02F)),
      positions_(rng.normal_tensor(sequence_length(), hidden, 0.02F)) {
  if (patch_size == 0 || image_size % patch_size != 0) {
    throw std::invalid_argument("PatchEmbedding: bad patch geometry");
  }
}

std::size_t PatchEmbedding::sequence_length() const noexcept {
  const std::size_t per_side = image_size_ / patch_size_;
  return per_side * per_side + 1;
}

Tensor PatchEmbedding::embed(const Image& image) const {
  if (image.height != image_size_ || image.width != image_size_ ||
      image.channels != channels_) {
    throw std::invalid_argument("PatchEmbedding: image geometry mismatch");
  }
  const std::size_t per_side = image_size_ / patch_size_;
  const std::size_t patch_dim = patch_size_ * patch_size_ * channels_;

  // Unfold into [num_patches x patch_dim], then one GEMM — equivalent to the
  // stride-P convolution ViT uses.
  Tensor patches(per_side * per_side, patch_dim);
  for (std::size_t py = 0; py < per_side; ++py) {
    for (std::size_t px = 0; px < per_side; ++px) {
      auto row = patches.row(py * per_side + px);
      std::size_t idx = 0;
      for (std::size_t y = 0; y < patch_size_; ++y) {
        for (std::size_t x = 0; x < patch_size_; ++x) {
          for (std::size_t c = 0; c < channels_; ++c) {
            row[idx++] =
                image.at(py * patch_size_ + y, px * patch_size_ + x, c);
          }
        }
      }
    }
  }
  const Tensor projected = matmul(patches, projection_);

  Tensor out(sequence_length(), projected.cols());
  out.set_rows(0, cls_token_);
  out.set_rows(1, projected);
  add_inplace(out, positions_);
  return out;
}

}  // namespace voltage
