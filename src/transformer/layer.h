// A full transformer layer (encoder/decoder block, paper Fig. 1):
//   Y = LayerNorm(MultiHead(x) + x)
//   T(x) = LayerNorm(FFN(Y) + Y)
#pragma once

#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

class TransformerLayer {
 public:
  TransformerLayer(LayerConfig config, LayerWeights weights)
      : config_(config), weights_(std::move(weights)) {
    config_.validate();
  }

  // Full-sequence forward — the single-device reference path.
  [[nodiscard]] Tensor forward(const Tensor& x) const;

  [[nodiscard]] const LayerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const LayerWeights& weights() const noexcept {
    return weights_;
  }
  // Mutable access for checkpoint loading (transformer/model_io.h).
  [[nodiscard]] LayerWeights& mutable_weights() noexcept { return weights_; }

 private:
  LayerConfig config_;
  LayerWeights weights_;
};

}  // namespace voltage
