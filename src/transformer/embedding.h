// Pre-processing layers that map raw inputs (token ids, images) to the
// [N x F] feature sequences consumed by the transformer stack. In Voltage
// these run on the terminal device before the input is broadcast (paper
// Fig. 3 / Algorithm 2 step 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"
#include "transformer/image.h"
#include "transformer/weights.h"

namespace voltage {

using TokenId = std::int32_t;

class Rng;

// Learned token + learned absolute position embeddings (BERT/GPT-2 style).
class TokenEmbedding {
 public:
  TokenEmbedding(std::size_t vocab_size, std::size_t max_positions,
                 std::size_t hidden, Rng& rng);

  // [N x F] embedded sequence; throws if a token id is out of range or the
  // sequence exceeds max_positions.
  [[nodiscard]] Tensor embed(std::span<const TokenId> tokens) const {
    return embed_at(tokens, 0);
  }

  // Embeds a sequence whose first token sits at global position `start` —
  // the incremental-decoding entry point.
  [[nodiscard]] Tensor embed_at(std::span<const TokenId> tokens,
                                std::size_t start) const;

  [[nodiscard]] std::size_t vocab_size() const noexcept {
    return table_.rows();
  }
  [[nodiscard]] std::size_t max_positions() const noexcept {
    return positions_.rows();
  }
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return table_.size() + positions_.size();
  }

  void visit_parameters(const std::string& prefix, const ParamVisitor& visit) {
    visit(prefix + ".table", table_);
    visit(prefix + ".positions", positions_);
  }

 private:
  Tensor table_;      // vocab x F
  Tensor positions_;  // max_positions x F
};

// ViT-style patch embedding: non-overlapping P x P patches, linear
// projection, prepended [CLS] token, learned position embeddings.
class PatchEmbedding {
 public:
  PatchEmbedding(std::size_t image_size, std::size_t patch_size,
                 std::size_t channels, std::size_t hidden, Rng& rng);

  // [(num_patches + 1) x F] sequence; throws on geometry mismatch.
  [[nodiscard]] Tensor embed(const Image& image) const;

  [[nodiscard]] std::size_t sequence_length() const noexcept;
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return projection_.size() + cls_token_.size() + positions_.size();
  }

  void visit_parameters(const std::string& prefix, const ParamVisitor& visit) {
    visit(prefix + ".projection", projection_);
    visit(prefix + ".cls_token", cls_token_);
    visit(prefix + ".positions", positions_);
  }

 private:
  std::size_t image_size_;
  std::size_t patch_size_;
  std::size_t channels_;
  Tensor projection_;  // (patch^2 * C) x F
  Tensor cls_token_;   // 1 x F
  Tensor positions_;   // (num_patches + 1) x F
};

}  // namespace voltage
