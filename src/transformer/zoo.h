// The model zoo used in the paper's evaluation (§VI-A): BERT-Large-Uncased,
// ViT-Base/16 and GPT-2 (small). Full-size specs drive the analytic latency
// profiles; the `mini_*` variants are architecturally identical scaled-down
// models that the examples and integration tests can instantiate cheaply.
//
// Substitution note (see DESIGN.md): weights are deterministic random, not
// the pretrained checkpoints — latency and communication volume depend only
// on shapes, and correctness is established by distributed == single-device
// equivalence.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "transformer/config.h"
#include "transformer/model.h"

namespace voltage {

// --- full-size specs (paper §VI-A) ---------------------------------------
[[nodiscard]] ModelSpec bert_large_spec();  // L=24, F=1024, H=16, F_H=64
[[nodiscard]] ModelSpec vit_base_spec();    // L=12, F=768,  H=12, 224x224/16
[[nodiscard]] ModelSpec gpt2_spec();        // L=12, F=768,  H=12, causal

// --- additional well-known architectures ---------------------------------
[[nodiscard]] ModelSpec bert_base_spec();    // L=12, F=768, H=12
[[nodiscard]] ModelSpec distilbert_spec();   // L=6,  F=768, H=12
[[nodiscard]] ModelSpec gpt2_medium_spec();  // L=24, F=1024, H=16, causal
[[nodiscard]] ModelSpec vit_large_spec();    // L=24, F=1024, H=16

// Parameter count implied by a spec, computed analytically (no weights are
// materialized — safe for BERT-Large-scale specs on small machines).
[[nodiscard]] std::size_t spec_parameter_count(const ModelSpec& spec);

// Sequence lengths the paper evaluates with ("a random string with 200
// words" for text, one 224x224 image for ViT).
inline constexpr std::size_t kPaperTextSequenceLength = 200;

// --- scaled-down variants for runnable examples/tests --------------------
[[nodiscard]] ModelSpec mini_bert_spec();
[[nodiscard]] ModelSpec mini_vit_spec();
[[nodiscard]] ModelSpec mini_gpt2_spec();

[[nodiscard]] TransformerModel make_model(const ModelSpec& spec,
                                          std::uint64_t seed = 42);

// Registry lookup by the spec's canonical name (e.g. "gpt2",
// "bert-large-uncased") or the short aliases "bert" / "vit" / "gpt2".
// Returns std::nullopt for unknown names.
[[nodiscard]] std::optional<ModelSpec> spec_by_name(std::string_view name);

// Names of every registered spec (for CLI help).
[[nodiscard]] std::vector<std::string> registered_spec_names();

}  // namespace voltage
