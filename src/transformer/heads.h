// Post-processing heads that turn the final hidden sequence into task
// outputs. In Voltage these run on the terminal device after it collects
// the last layer's partitions (paper Algorithm 2, steps 16-17).
#pragma once

#include "tensor/tensor.h"
#include "transformer/weights.h"

namespace voltage {

class Rng;

enum class Pooling : std::uint8_t {
  kClsToken,  // use position 0 ([CLS]) — BERT/ViT
  kMeanPool,  // average all positions
  kLastToken  // use the final position — GPT-style classification
};

// Linear classifier over a pooled sequence representation.
class ClassifierHead {
 public:
  ClassifierHead(std::size_t hidden, std::size_t num_classes, Pooling pooling,
                 Rng& rng);

  // [1 x num_classes] logits.
  [[nodiscard]] Tensor forward(const Tensor& hidden_states) const;

  [[nodiscard]] std::size_t num_classes() const noexcept { return w_.cols(); }
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return w_.size() + b_.size();
  }

  void visit_parameters(const std::string& prefix, const ParamVisitor& visit) {
    visit(prefix + ".w", w_);
    visit(prefix + ".b", b_);
  }

 private:
  Pooling pooling_;
  Tensor w_;  // F x num_classes
  Tensor b_;  // 1 x num_classes
};

// Language-model head: next-token logits from the last position.
class LmHead {
 public:
  LmHead(std::size_t hidden, std::size_t vocab_size, Rng& rng);

  // [1 x vocab] logits for the token following the sequence.
  [[nodiscard]] Tensor forward_last(const Tensor& hidden_states) const;

  // [R x vocab] logits, one row per input row. For batched decoding, where
  // every row is the final hidden state of a different sequence: the GEMM is
  // bitwise row-independent, so row r equals forward_last on that row alone.
  [[nodiscard]] Tensor forward_rows(const Tensor& hidden_states) const;

  [[nodiscard]] std::size_t vocab_size() const noexcept { return w_.cols(); }
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return w_.size();
  }

  void visit_parameters(const std::string& prefix, const ParamVisitor& visit) {
    visit(prefix + ".w", w_);
  }

 private:
  Tensor w_;  // F x vocab
};

}  // namespace voltage
