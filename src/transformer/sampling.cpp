#include "transformer/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace voltage {

TokenId greedy_sample(const Tensor& logits) {
  if (logits.rows() != 1 || logits.cols() == 0) {
    throw std::invalid_argument("greedy_sample: need a 1 x vocab row");
  }
  return static_cast<TokenId>(argmax_row(logits, 0));
}

TokenId sample_top_k(const Tensor& logits, std::size_t top_k,
                     float temperature, Rng& rng) {
  if (logits.rows() != 1 || logits.cols() == 0) {
    throw std::invalid_argument("sample_top_k: need a 1 x vocab row");
  }
  if (top_k == 0 || top_k > logits.cols()) {
    throw std::invalid_argument("sample_top_k: top_k out of range");
  }
  if (temperature <= 0.0F) {
    throw std::invalid_argument("sample_top_k: temperature must be > 0");
  }
  const auto row = logits.row(0);

  // Indices of the k largest logits.
  std::vector<std::size_t> order(row.size());
  std::iota(order.begin(), order.end(), 0U);
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(top_k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return row[a] > row[b];
                    });
  order.resize(top_k);

  // Temperature softmax over the shortlist (max-shifted for stability).
  std::vector<double> probs(top_k);
  const double maxv = row[order.front()];
  double sum = 0.0;
  for (std::size_t i = 0; i < top_k; ++i) {
    probs[i] = std::exp((static_cast<double>(row[order[i]]) - maxv) /
                        static_cast<double>(temperature));
    sum += probs[i];
  }
  double draw = static_cast<double>(rng.next_uniform()) * sum;
  for (std::size_t i = 0; i < top_k; ++i) {
    draw -= probs[i];
    if (draw <= 0.0) return static_cast<TokenId>(order[i]);
  }
  return static_cast<TokenId>(order.back());
}

std::vector<TokenId> generate(IncrementalDecoder& decoder,
                              std::span<const TokenId> prompt,
                              std::size_t count, const SamplingConfig& config,
                              Rng& rng) {
  std::vector<TokenId> out;
  out.reserve(count);
  Tensor logits = decoder.prime(prompt);
  for (std::size_t i = 0; i < count; ++i) {
    const TokenId next =
        config.top_k == 0
            ? greedy_sample(logits)
            : sample_top_k(logits, config.top_k, config.temperature, rng);
    out.push_back(next);
    if (i + 1 < count) logits = decoder.step(next);
  }
  return out;
}

}  // namespace voltage
