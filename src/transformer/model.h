// End-to-end transformer model: pre-processing embedding, a stack of
// transformer layers, and a task head. The three stages are exposed
// separately because Voltage (Algorithm 2) runs pre/post-processing on the
// terminal device and distributes only the layer stack.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/embedding.h"
#include "transformer/heads.h"
#include "transformer/layer.h"

namespace voltage {

class TransformerModel {
 public:
  // Builds the model with deterministic random weights derived from `seed`.
  TransformerModel(ModelSpec spec, std::uint64_t seed);

  [[nodiscard]] const ModelSpec& spec() const noexcept { return spec_; }

  // --- terminal-device pre-processing -----------------------------------
  [[nodiscard]] Tensor preprocess(std::span<const TokenId> tokens) const;
  [[nodiscard]] Tensor preprocess(const Image& image) const;
  // Text models only: embed tokens whose first element sits at global
  // position `start` (incremental decoding).
  [[nodiscard]] Tensor preprocess_at(std::span<const TokenId> tokens,
                                     std::size_t start) const;

  // --- distributed portion ----------------------------------------------
  [[nodiscard]] std::span<const TransformerLayer> layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] Tensor forward_layers(Tensor x) const;

  // --- terminal-device post-processing -----------------------------------
  [[nodiscard]] Tensor postprocess(const Tensor& hidden_states) const;

  // Causal LMs only: next-token logits for *every* input row ([R x vocab]),
  // where each row is the final hidden state of an independent sequence —
  // the batched-decode head. Row r is bitwise equal to postprocess on that
  // row alone.
  [[nodiscard]] Tensor postprocess_rows(const Tensor& hidden_states) const;

  // Single-device end-to-end inference (the paper's baseline deployment).
  [[nodiscard]] Tensor infer(std::span<const TokenId> tokens) const;
  [[nodiscard]] Tensor infer(const Image& image) const;

  [[nodiscard]] std::size_t parameter_count() const;

  // Visits every parameter tensor with a stable hierarchical name — the
  // basis for save_model / load_model (transformer/model_io.h).
  void visit_parameters(const ParamVisitor& visit);

 private:
  ModelSpec spec_;
  std::optional<TokenEmbedding> token_embedding_;
  std::optional<PatchEmbedding> patch_embedding_;
  std::vector<TransformerLayer> layers_;
  std::optional<ClassifierHead> classifier_;
  std::optional<LmHead> lm_head_;
};

}  // namespace voltage
