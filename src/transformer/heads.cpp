#include "transformer/heads.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace voltage {

ClassifierHead::ClassifierHead(std::size_t hidden, std::size_t num_classes,
                               Pooling pooling, Rng& rng)
    : pooling_(pooling),
      w_(rng.normal_tensor(hidden, num_classes,
                           1.0F / std::sqrt(static_cast<float>(hidden)))),
      b_(Tensor(1, num_classes)) {}

Tensor ClassifierHead::forward(const Tensor& hidden_states) const {
  if (hidden_states.rows() == 0) {
    throw std::invalid_argument("ClassifierHead: empty sequence");
  }
  Tensor pooled;
  switch (pooling_) {
    case Pooling::kClsToken:
      pooled = hidden_states.slice_rows(0, 1);
      break;
    case Pooling::kMeanPool:
      pooled = mean_rows(hidden_states);
      break;
    case Pooling::kLastToken:
      pooled =
          hidden_states.slice_rows(hidden_states.rows() - 1,
                                   hidden_states.rows());
      break;
  }
  Tensor logits = matmul(pooled, w_);
  add_bias_inplace(logits, b_);
  return logits;
}

LmHead::LmHead(std::size_t hidden, std::size_t vocab_size, Rng& rng)
    : w_(rng.normal_tensor(hidden, vocab_size,
                           1.0F / std::sqrt(static_cast<float>(hidden)))) {}

Tensor LmHead::forward_last(const Tensor& hidden_states) const {
  if (hidden_states.rows() == 0) {
    throw std::invalid_argument("LmHead: empty sequence");
  }
  const Tensor last = hidden_states.slice_rows(hidden_states.rows() - 1,
                                               hidden_states.rows());
  return matmul(last, w_);
}

Tensor LmHead::forward_rows(const Tensor& hidden_states) const {
  if (hidden_states.rows() == 0) {
    throw std::invalid_argument("LmHead: empty batch");
  }
  return matmul(hidden_states, w_);
}

}  // namespace voltage
