// Runtime ISA dispatch for the blocked int8 GEMM. Integer arithmetic is
// exact, so unlike the fp32 dispatcher there is no contraction pairing to
// preserve — the reference is dispatched alongside the kernel purely so
// tests can confirm the selected TU against itself.
#include "tensor/gemm_s8.h"

namespace voltage::detail {

namespace base {
void gemm_s8_blocked(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t i0,
                     std::size_t i1, std::size_t k, std::size_t n);
void gemm_s8_reference(const std::int8_t* a, const std::int8_t* b,
                       std::int32_t* c, std::size_t m, std::size_t k,
                       std::size_t n);
}  // namespace base

#if defined(__x86_64__) || defined(_M_X64)
namespace avx2 {
void gemm_s8_blocked(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t i0,
                     std::size_t i1, std::size_t k, std::size_t n);
void gemm_s8_reference(const std::int8_t* a, const std::int8_t* b,
                       std::int32_t* c, std::size_t m, std::size_t k,
                       std::size_t n);
}  // namespace avx2
namespace avx512 {
void gemm_s8_blocked(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t i0,
                     std::size_t i1, std::size_t k, std::size_t n);
void gemm_s8_reference(const std::int8_t* a, const std::int8_t* b,
                       std::int32_t* c, std::size_t m, std::size_t k,
                       std::size_t n);
}  // namespace avx512
#endif

namespace {

using BlockedFn = void (*)(const std::int8_t*, const std::int8_t*,
                           std::int32_t*, std::size_t, std::size_t,
                           std::size_t, std::size_t, std::size_t);
using ReferenceFn = void (*)(const std::int8_t*, const std::int8_t*,
                             std::int32_t*, std::size_t, std::size_t,
                             std::size_t);

struct Dispatch {
  BlockedFn blocked;
  ReferenceFn reference;
  const char* arch;
};

Dispatch pick() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  // _mm512_madd_epi16 is AVX-512BW, not F — gate on both.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return {&avx512::gemm_s8_blocked, &avx512::gemm_s8_reference, "avx512"};
  }
  if (__builtin_cpu_supports("avx2")) {
    return {&avx2::gemm_s8_blocked, &avx2::gemm_s8_reference, "avx2"};
  }
#endif
  return {&base::gemm_s8_blocked, &base::gemm_s8_reference, "base"};
}

const Dispatch& dispatch() noexcept {
  static const Dispatch d = pick();
  return d;
}

}  // namespace

void gemm_s8_blocked(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t i0,
                     std::size_t i1, std::size_t k, std::size_t n) {
  dispatch().blocked(a, b, c, m, i0, i1, k, n);
}

void gemm_s8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
             std::size_t m, std::size_t k, std::size_t n) {
  gemm_s8_blocked(a, b, c, m, 0, m, k, n);
}

void gemm_s8_reference(const std::int8_t* a, const std::int8_t* b,
                       std::int32_t* c, std::size_t m, std::size_t k,
                       std::size_t n) {
  dispatch().reference(a, b, c, m, k, n);
}

const char* gemm_s8_kernel_arch() noexcept { return dispatch().arch; }

}  // namespace voltage::detail
