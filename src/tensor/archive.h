// Named-tensor archive: the on-disk checkpoint format.
//
// Layout: magic "VLTA", u32 version, u64 entry count, then per entry a
// u32-length-prefixed UTF-8 name followed by the tensor in the same wire
// format the fabric uses (u64 rows, u64 cols, f32 data). Everything is
// little-endian; loading validates structure and sizes.
#pragma once

#include <filesystem>
#include <map>
#include <string>

#include "tensor/tensor.h"

namespace voltage {

class TensorArchive {
 public:
  // Inserts or replaces an entry.
  void put(std::string name, Tensor tensor);

  [[nodiscard]] bool contains(const std::string& name) const;
  // Throws std::out_of_range if missing.
  [[nodiscard]] const Tensor& get(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::map<std::string, Tensor>& entries() const noexcept {
    return entries_;
  }

  void save(const std::filesystem::path& path) const;
  // Throws std::runtime_error on malformed files.
  [[nodiscard]] static TensorArchive load(const std::filesystem::path& path);

 private:
  std::map<std::string, Tensor> entries_;
};

}  // namespace voltage
