// Runtime ISA dispatch for the blocked GEMM. The kernel and the naive
// reference always come from the same translation unit, so the compiler's
// FP-contraction choice (mul+add on baseline, fused FMA under -mfma) applies
// to both identically and the bitwise contract in gemm.h holds on every ISA.
#include "tensor/gemm.h"

namespace voltage::detail {

namespace base {
void gemm_blocked(const float* a, bool trans_a, const float* b, bool trans_b,
                  float* c, std::size_t m, std::size_t i0, std::size_t i1,
                  std::size_t k, std::size_t n);
void gemm_reference(const float* a, bool trans_a, const float* b, bool trans_b,
                    float* c, std::size_t m, std::size_t k, std::size_t n);
}  // namespace base

#if defined(__x86_64__) || defined(_M_X64)
namespace avx2 {
void gemm_blocked(const float* a, bool trans_a, const float* b, bool trans_b,
                  float* c, std::size_t m, std::size_t i0, std::size_t i1,
                  std::size_t k, std::size_t n);
void gemm_reference(const float* a, bool trans_a, const float* b, bool trans_b,
                    float* c, std::size_t m, std::size_t k, std::size_t n);
}  // namespace avx2
namespace avx512 {
void gemm_blocked(const float* a, bool trans_a, const float* b, bool trans_b,
                  float* c, std::size_t m, std::size_t i0, std::size_t i1,
                  std::size_t k, std::size_t n);
void gemm_reference(const float* a, bool trans_a, const float* b, bool trans_b,
                    float* c, std::size_t m, std::size_t k, std::size_t n);
}  // namespace avx512
#endif

namespace {

using BlockedFn = void (*)(const float*, bool, const float*, bool, float*,
                           std::size_t, std::size_t, std::size_t, std::size_t,
                           std::size_t);
using ReferenceFn = void (*)(const float*, bool, const float*, bool, float*,
                             std::size_t, std::size_t, std::size_t);

struct Dispatch {
  BlockedFn blocked;
  ReferenceFn reference;
  const char* arch;
};

Dispatch pick() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("fma")) {
    return {&avx512::gemm_blocked, &avx512::gemm_reference, "avx512"};
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {&avx2::gemm_blocked, &avx2::gemm_reference, "avx2"};
  }
#endif
  return {&base::gemm_blocked, &base::gemm_reference, "base"};
}

const Dispatch& dispatch() noexcept {
  static const Dispatch d = pick();
  return d;
}

}  // namespace

void gemm_blocked(const float* a, bool trans_a, const float* b, bool trans_b,
                  float* c, std::size_t m, std::size_t i0, std::size_t i1,
                  std::size_t k, std::size_t n) {
  dispatch().blocked(a, trans_a, b, trans_b, c, m, i0, i1, k, n);
}

void gemm_nn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n) {
  gemm_blocked(a, false, b, false, c, m, 0, m, k, n);
}

void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n) {
  gemm_blocked(a, false, b, true, c, m, 0, m, k, n);
}

void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n) {
  gemm_blocked(a, true, b, false, c, m, 0, m, k, n);
}

void gemm_tt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n) {
  gemm_blocked(a, true, b, true, c, m, 0, m, k, n);
}

void gemm_reference(const float* a, bool trans_a, const float* b, bool trans_b,
                    float* c, std::size_t m, std::size_t k, std::size_t n) {
  dispatch().reference(a, trans_a, b, trans_b, c, m, k, n);
}

const char* gemm_kernel_arch() noexcept { return dispatch().arch; }

}  // namespace voltage::detail
