// AVX-512BW instantiation of the blocked int8 GEMM: 8x32 int32 zmm tile fed
// by _mm512_madd_epi16 (a BW instruction, hence the extra flag) on int16
// k-pair panels. Compiled with -mavx512f -mavx512bw; selected at runtime by
// gemm_s8.cpp.
#define VOLTAGE_GEMM_NAMESPACE avx512
#include "tensor/gemm_s8_impl.inc"
