// Deterministic random number generation for weight initialization and
// synthetic workloads. A fixed, owned generator (splitmix64) guarantees
// identical tensors across platforms and runs, which the correctness tests
// (distributed output == single-device output) rely on.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace voltage {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  // Uniform in [0, 2^64).
  std::uint64_t next_u64() noexcept;
  // Uniform in [0, 1).
  float next_uniform() noexcept;
  // Standard normal via Box-Muller.
  float next_normal() noexcept;
  // Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // rows x cols tensor with N(0, stddev^2) entries.
  Tensor normal_tensor(std::size_t rows, std::size_t cols, float stddev);
  // rows x cols tensor uniform in [lo, hi).
  Tensor uniform_tensor(std::size_t rows, std::size_t cols, float lo, float hi);

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  float spare_ = 0.0F;
};

}  // namespace voltage
