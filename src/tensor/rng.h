// Deterministic random number generation for weight initialization and
// synthetic workloads. A fixed, owned generator (splitmix64) guarantees
// identical tensors across platforms and runs, which the correctness tests
// (distributed output == single-device output) rely on.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace voltage {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  // Uniform in [0, 2^64).
  std::uint64_t next_u64() noexcept;
  // Uniform in [0, 1).
  float next_uniform() noexcept;
  // Uniform in (0, 1), open at BOTH ends, 53-bit resolution. This is the
  // generator for inverse-CDF sampling (-log(u), u^(-1/alpha), ...): the
  // 24-bit next_uniform() returns exactly 0 with probability 2^-24, which
  // any clamp turns into a phantom extreme draw — at 10M+ samples those
  // corrupt max/p99 statistics. Here the smallest value is 2^-54 and the
  // transforms stay finite without clamping.
  double next_uniform_double() noexcept;
  // Standard normal via Box-Muller.
  float next_normal() noexcept;
  // Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // rows x cols tensor with N(0, stddev^2) entries.
  Tensor normal_tensor(std::size_t rows, std::size_t cols, float stddev);
  // rows x cols tensor uniform in [lo, hi).
  Tensor uniform_tensor(std::size_t rows, std::size_t cols, float lo, float hi);

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  float spare_ = 0.0F;
};

}  // namespace voltage
