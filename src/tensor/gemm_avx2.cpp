// AVX2+FMA instantiation of the blocked GEMM. This TU is compiled with
// -mavx2 -mfma (see CMakeLists.txt) so the 6x16 micro-kernel vectorizes to
// fused multiply-adds; the dispatcher in gemm.cpp selects it at runtime via
// __builtin_cpu_supports, so the binary stays safe on older x86-64.
// Non-x86 builds compile this TU empty and never reference the namespace.
#if defined(__x86_64__) || defined(_M_X64)
#define VOLTAGE_GEMM_NAMESPACE avx2
#include "tensor/gemm_impl.inc"
#endif
