#include "tensor/archive.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace voltage {

namespace {

constexpr char kMagic[4] = {'V', 'L', 'T', 'A'};
constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <class T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("TensorArchive: truncated file");
}

}  // namespace

void TensorArchive::put(std::string name, Tensor tensor) {
  entries_.insert_or_assign(std::move(name), std::move(tensor));
}

bool TensorArchive::contains(const std::string& name) const {
  return entries_.contains(name);
}

const Tensor& TensorArchive::get(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("TensorArchive: no entry named " + name);
  }
  return it->second;
}

void TensorArchive::save(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TensorArchive: cannot open " + path.string());
  }
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(entries_.size()));
  for (const auto& [name, tensor] : entries_) {
    write_pod(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<std::uint64_t>(tensor.rows()));
    write_pod(out, static_cast<std::uint64_t>(tensor.cols()));
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.byte_size()));
  }
  if (!out) {
    throw std::runtime_error("TensorArchive: write failed for " +
                             path.string());
  }
}

TensorArchive TensorArchive::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("TensorArchive: cannot open " + path.string());
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("TensorArchive: bad magic in " + path.string());
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (version != kVersion) {
    throw std::runtime_error("TensorArchive: unsupported version");
  }
  std::uint64_t count = 0;
  read_pod(in, count);
  TensorArchive archive;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    read_pod(in, name_len);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) throw std::runtime_error("TensorArchive: truncated name");
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    read_pod(in, rows);
    read_pod(in, cols);
    Tensor tensor(rows, cols);
    in.read(reinterpret_cast<char*>(tensor.data()),
            static_cast<std::streamsize>(tensor.byte_size()));
    if (!in) throw std::runtime_error("TensorArchive: truncated tensor data");
    archive.put(std::move(name), std::move(tensor));
  }
  return archive;
}

}  // namespace voltage
