// Dense 2-D row-major float tensor used throughout Voltage.
//
// The whole system works on activations shaped [sequence x features] and
// weights shaped [in_features x out_features], so a 2-D matrix type with
// value semantics is the right altitude: cheap to reason about, trivially
// serializable for the network fabric, and fast enough for the paper's
// model sizes (N <= 300, F <= 1024).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace voltage {

class Tensor {
 public:
  Tensor() = default;

  Tensor(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0F) {}

  Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  // Row-major construction from nested braces, e.g. {{1, 2}, {3, 4}}.
  Tensor(std::initializer_list<std::initializer_list<float>> init);

  static Tensor zeros(std::size_t rows, std::size_t cols) {
    return Tensor(rows, cols);
  }
  static Tensor filled(std::size_t rows, std::size_t cols, float value);
  // Identity-like square matrix (used by tests).
  static Tensor identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return data_.size() * sizeof(float);
  }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

  // Copy of rows [begin, end).
  [[nodiscard]] Tensor slice_rows(std::size_t begin, std::size_t end) const;
  // Copy of columns [begin, end).
  [[nodiscard]] Tensor slice_cols(std::size_t begin, std::size_t end) const;
  [[nodiscard]] Tensor transposed() const;

  // Process-wide count of transposed() materializations — the GEMM path must
  // never bump it (kernels read transposed operands through packing).
  [[nodiscard]] static std::uint64_t transpose_copy_count() noexcept;

  // Writes `block` into this tensor starting at row `row_begin`.
  void set_rows(std::size_t row_begin, const Tensor& block);

  void fill(float value);

  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  friend bool operator==(const Tensor& a, const Tensor& b) noexcept {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// Maximum absolute elementwise difference; shapes must match.
[[nodiscard]] float max_abs_diff(const Tensor& a, const Tensor& b);

// True when all elements differ by at most `tol`.
[[nodiscard]] bool allclose(const Tensor& a, const Tensor& b, float tol);

}  // namespace voltage
