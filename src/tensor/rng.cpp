#include "tensor/rng.h"

#include <cmath>
#include <numbers>

namespace voltage {

std::uint64_t Rng::next_u64() noexcept {
  // splitmix64: tiny, fast, well distributed, fully deterministic.
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

float Rng::next_uniform() noexcept {
  // 24 top bits -> [0, 1) exactly representable in float.
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24F;
}

double Rng::next_uniform_double() noexcept {
  // 53 top bits centered on the grid midpoints: (k + 0.5) * 2^-53 for
  // k in [0, 2^53), i.e. (0, 1) open at both ends.
  return (static_cast<double>(next_u64() >> 11) + 0.5) * 0x1.0p-53;
}

float Rng::next_normal() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  float u1 = next_uniform();
  const float u2 = next_uniform();
  if (u1 < 1e-12F) u1 = 1e-12F;
  const float mag = std::sqrt(-2.0F * std::log(u1));
  const float angle = 2.0F * std::numbers::pi_v<float> * u2;
  spare_ = mag * std::sin(angle);
  have_spare_ = true;
  return mag * std::cos(angle);
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  return bound == 0 ? 0 : next_u64() % bound;
}

Tensor Rng::normal_tensor(std::size_t rows, std::size_t cols, float stddev) {
  Tensor t(rows, cols);
  for (float& v : t.flat()) v = next_normal() * stddev;
  return t;
}

Tensor Rng::uniform_tensor(std::size_t rows, std::size_t cols, float lo,
                           float hi) {
  Tensor t(rows, cols);
  for (float& v : t.flat()) v = lo + (hi - lo) * next_uniform();
  return t;
}

}  // namespace voltage
