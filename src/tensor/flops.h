// Process-wide, thread-safe floating-operation accounting.
//
// The paper measures computation complexity Γ(·) in matrix-multiplication
// "floating operations": Γ(xW) = N·F·F_H for x ∈ R^{N×F}, W ∈ R^{F×F_H}
// (i.e. multiply-accumulate count). Kernels in ops.h report into these
// counters so tests can check the closed-form Γ expressions of Theorems 1-3
// against what the code actually executed — exactly, as integers. The
// counters are atomics shared by every thread: intra-op pool workers and
// runtime device threads contribute to the same totals, so parallel kernels
// never drop MACs.
#pragma once

#include <cstdint>

namespace voltage::flops {

// Multiply-accumulate count of all GEMMs since the last reset().
[[nodiscard]] std::uint64_t matmul_macs() noexcept;

// Elementwise/reduction op count (softmax, layernorm, activations, adds).
// These are the O(PN) terms the paper folds into big-O.
[[nodiscard]] std::uint64_t elementwise_ops() noexcept;

void add_matmul_macs(std::uint64_t n) noexcept;
void add_elementwise(std::uint64_t n) noexcept;

void reset() noexcept;

// RAII scope that resets on entry and exposes deltas.
class Scope {
 public:
  Scope() noexcept { reset(); }
  [[nodiscard]] std::uint64_t macs() const noexcept { return matmul_macs(); }
  [[nodiscard]] std::uint64_t elementwise() const noexcept {
    return elementwise_ops();
  }
};

}  // namespace voltage::flops
