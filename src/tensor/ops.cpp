#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "core/thread_pool.h"
#include "obs/trace.h"
#include "tensor/flops.h"
#include "tensor/gemm.h"

namespace voltage {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

const char* gemm_variant(Trans ta, Trans tb) {
  if (ta == Trans::kNo) return tb == Trans::kNo ? "nn" : "nt";
  return tb == Trans::kNo ? "tn" : "tt";
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, Trans ta, Trans tb) {
  const std::size_t m = ta == Trans::kNo ? a.rows() : a.cols();
  const std::size_t ka = ta == Trans::kNo ? a.cols() : a.rows();
  const std::size_t kb = tb == Trans::kNo ? b.rows() : b.cols();
  const std::size_t n = tb == Trans::kNo ? b.cols() : b.rows();
  require(ka == kb, "matmul: inner dimensions do not conform");

  Tensor c(m, n);
  if (m != 0 && n != 0 && ka != 0) {
    // Kernel-time attribution: when a tracer is ambient (device threads, the
    // serving terminal), each GEMM reports its variant and shape so
    // trace_report can split layer time into kernel time.
    obs::TraceSpan span(obs::thread_tracer(), "gemm", "kernel",
                        obs::thread_track());
    if (span.enabled()) {
      span.layer(obs::thread_layer());
      span.tag(std::string(gemm_variant(ta, tb)) + " " + std::to_string(m) +
               "x" + std::to_string(ka) + "x" + std::to_string(n));
    }
    const bool trans_a = ta == Trans::kYes;
    const bool trans_b = tb == Trans::kYes;
    // Row-panel parallelism: every chunk owns whole C rows, so each row's FP
    // summation order — and therefore the result — is bitwise identical at
    // any intra-op thread count. The grain keeps tasks above ~256k MACs so
    // small GEMMs never pay pool latency.
    constexpr std::uint64_t kMacsPerTask = 1ULL << 18;
    const std::uint64_t row_macs = static_cast<std::uint64_t>(ka) * n;
    const std::size_t grain = static_cast<std::size_t>(
        std::max<std::uint64_t>(detail::kGemmMr, kMacsPerTask / row_macs));
    parallel_for(0, m, grain, [&, trans_a, trans_b](std::size_t r0,
                                                    std::size_t r1) {
      detail::gemm_blocked(a.data(), trans_a, b.data(), trans_b, c.data(), m,
                           r0, r1, ka, n);
    });
  }
  flops::add_matmul_macs(static_cast<std::uint64_t>(m) * ka * n);
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  require(a.same_shape(b), "add: shape mismatch");
  auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] += fb[i];
  flops::add_elementwise(fa.size());
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require(a.same_shape(b), "sub: shape mismatch");
  Tensor out = a;
  auto fo = out.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fo.size(); ++i) fo[i] -= fb[i];
  flops::add_elementwise(fo.size());
  return out;
}

void add_bias_inplace(Tensor& x, const Tensor& bias) {
  require(bias.rows() == 1 && bias.cols() == x.cols(),
          "add_bias: bias must be 1 x cols");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    const auto b = bias.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += b[c];
  }
  flops::add_elementwise(x.size());
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

void scale_inplace(Tensor& a, float s) {
  for (float& v : a.flat()) v *= s;
  flops::add_elementwise(a.size());
}

Tensor softmax_rows(const Tensor& x, float pre_scale) {
  Tensor out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto in = x.row(r);
    auto o = out.row(r);
    float maxv = -std::numeric_limits<float>::infinity();
    for (const float v : in) maxv = std::max(maxv, v * pre_scale);
    float sum = 0.0F;
    for (std::size_t c = 0; c < in.size(); ++c) {
      o[c] = std::exp(in[c] * pre_scale - maxv);
      sum += o[c];
    }
    const float inv = 1.0F / sum;
    for (float& v : o) v *= inv;
  }
  flops::add_elementwise(4 * x.size());
  return out;
}

Tensor layernorm_rows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                      float eps) {
  require(gamma.rows() == 1 && gamma.cols() == x.cols(),
          "layernorm: gamma must be 1 x cols");
  require(beta.rows() == 1 && beta.cols() == x.cols(),
          "layernorm: beta must be 1 x cols");
  Tensor out(x.rows(), x.cols());
  const auto g = gamma.row(0);
  const auto b = beta.row(0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto in = x.row(r);
    auto o = out.row(r);
    float mean = 0.0F;
    for (const float v : in) mean += v;
    mean /= static_cast<float>(in.size());
    float var = 0.0F;
    for (const float v : in) var += (v - mean) * (v - mean);
    var /= static_cast<float>(in.size());
    const float inv_std = 1.0F / std::sqrt(var + eps);
    for (std::size_t c = 0; c < in.size(); ++c) {
      o[c] = (in[c] - mean) * inv_std * g[c] + b[c];
    }
  }
  flops::add_elementwise(5 * x.size());
  return out;
}

Tensor relu(const Tensor& x) {
  Tensor out = x;
  for (float& v : out.flat()) v = std::max(v, 0.0F);
  flops::add_elementwise(x.size());
  return out;
}

Tensor gelu(const Tensor& x) {
  Tensor out = x;
  constexpr float kSqrt2OverPi = 0.7978845608028654F;
  for (float& v : out.flat()) {
    const float inner = kSqrt2OverPi * (v + 0.044715F * v * v * v);
    v = 0.5F * v * (1.0F + std::tanh(inner));
  }
  flops::add_elementwise(8 * x.size());
  return out;
}

Tensor concat_cols(std::span<const Tensor> parts) {
  require(!parts.empty(), "concat_cols: no parts");
  const std::size_t rows = parts.front().rows();
  std::size_t cols = 0;
  for (const Tensor& p : parts) {
    require(p.rows() == rows, "concat_cols: row mismatch");
    cols += p.cols();
  }
  Tensor out(rows, cols);
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    for (std::size_t r = 0; r < rows; ++r) {
      const auto src = p.row(r);
      std::copy(src.begin(), src.end(), out.row(r).data() + offset);
    }
    offset += p.cols();
  }
  return out;
}

Tensor concat_rows(std::span<const Tensor> parts) {
  require(!parts.empty(), "concat_rows: no parts");
  const std::size_t cols = parts.front().cols();
  std::size_t rows = 0;
  for (const Tensor& p : parts) {
    require(p.cols() == cols, "concat_rows: column mismatch");
    rows += p.rows();
  }
  Tensor out(rows, cols);
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    out.set_rows(offset, p);
    offset += p.rows();
  }
  return out;
}

Tensor mean_rows(const Tensor& x) {
  require(x.rows() > 0, "mean_rows: empty tensor");
  Tensor out(1, x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto in = x.row(r);
    auto o = out.row(0);
    for (std::size_t c = 0; c < in.size(); ++c) o[c] += in[c];
  }
  scale_inplace(out, 1.0F / static_cast<float>(x.rows()));
  return out;
}

std::size_t argmax_row(const Tensor& x, std::size_t row) {
  const auto r = x.row(row);
  return static_cast<std::size_t>(
      std::distance(r.begin(), std::max_element(r.begin(), r.end())));
}

}  // namespace voltage
