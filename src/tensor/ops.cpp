#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "tensor/flops.h"

namespace voltage {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// Row-blocked i-k-j GEMM on row-major data. Processing four C rows per
// sweep reuses every loaded B row four times, which roughly triples
// arithmetic intensity over the scalar i-k-j loop; the j loop stays
// branch-free and contiguous so the compiler vectorizes it.
void gemm_nn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n) {
  constexpr std::size_t kRowBlock = 4;
  std::size_t i = 0;
  for (; i + kRowBlock <= m; i += kRowBlock) {
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float a0 = a[(i + 0) * k + p];
      const float a1 = a[(i + 1) * k + p];
      const float a2 = a[(i + 2) * k + p];
      const float a3 = a[(i + 3) * k + p];
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float bv = bp[j];
        c0[j] += a0 * bv;
        c1[j] += a1 * bv;
        c2[j] += a2 * bv;
        c3[j] += a3 * bv;
      }
    }
  }
  for (; i < m; ++i) {
    float* ci = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += aip * bp[j];
      }
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, Trans ta, Trans tb) {
  const std::size_t m = ta == Trans::kNo ? a.rows() : a.cols();
  const std::size_t ka = ta == Trans::kNo ? a.cols() : a.rows();
  const std::size_t kb = tb == Trans::kNo ? b.rows() : b.cols();
  const std::size_t n = tb == Trans::kNo ? b.cols() : b.rows();
  require(ka == kb, "matmul: inner dimensions do not conform");

  // Transposed operands are materialized once; the copy is O(size) against
  // the O(m*k*n) multiply and keeps a single fast kernel.
  const Tensor at = ta == Trans::kYes ? a.transposed() : Tensor();
  const Tensor bt = tb == Trans::kYes ? b.transposed() : Tensor();
  const float* pa = ta == Trans::kYes ? at.data() : a.data();
  const float* pb = tb == Trans::kYes ? bt.data() : b.data();

  Tensor c(m, n);
  gemm_nn(pa, pb, c.data(), m, ka, n);
  flops::add_matmul_macs(static_cast<std::uint64_t>(m) * ka * n);
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  require(a.same_shape(b), "add: shape mismatch");
  auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] += fb[i];
  flops::add_elementwise(fa.size());
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require(a.same_shape(b), "sub: shape mismatch");
  Tensor out = a;
  auto fo = out.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fo.size(); ++i) fo[i] -= fb[i];
  flops::add_elementwise(fo.size());
  return out;
}

void add_bias_inplace(Tensor& x, const Tensor& bias) {
  require(bias.rows() == 1 && bias.cols() == x.cols(),
          "add_bias: bias must be 1 x cols");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    const auto b = bias.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += b[c];
  }
  flops::add_elementwise(x.size());
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

void scale_inplace(Tensor& a, float s) {
  for (float& v : a.flat()) v *= s;
  flops::add_elementwise(a.size());
}

Tensor softmax_rows(const Tensor& x, float pre_scale) {
  Tensor out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto in = x.row(r);
    auto o = out.row(r);
    float maxv = -std::numeric_limits<float>::infinity();
    for (const float v : in) maxv = std::max(maxv, v * pre_scale);
    float sum = 0.0F;
    for (std::size_t c = 0; c < in.size(); ++c) {
      o[c] = std::exp(in[c] * pre_scale - maxv);
      sum += o[c];
    }
    const float inv = 1.0F / sum;
    for (float& v : o) v *= inv;
  }
  flops::add_elementwise(4 * x.size());
  return out;
}

Tensor layernorm_rows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                      float eps) {
  require(gamma.rows() == 1 && gamma.cols() == x.cols(),
          "layernorm: gamma must be 1 x cols");
  require(beta.rows() == 1 && beta.cols() == x.cols(),
          "layernorm: beta must be 1 x cols");
  Tensor out(x.rows(), x.cols());
  const auto g = gamma.row(0);
  const auto b = beta.row(0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto in = x.row(r);
    auto o = out.row(r);
    float mean = 0.0F;
    for (const float v : in) mean += v;
    mean /= static_cast<float>(in.size());
    float var = 0.0F;
    for (const float v : in) var += (v - mean) * (v - mean);
    var /= static_cast<float>(in.size());
    const float inv_std = 1.0F / std::sqrt(var + eps);
    for (std::size_t c = 0; c < in.size(); ++c) {
      o[c] = (in[c] - mean) * inv_std * g[c] + b[c];
    }
  }
  flops::add_elementwise(5 * x.size());
  return out;
}

Tensor relu(const Tensor& x) {
  Tensor out = x;
  for (float& v : out.flat()) v = std::max(v, 0.0F);
  flops::add_elementwise(x.size());
  return out;
}

Tensor gelu(const Tensor& x) {
  Tensor out = x;
  constexpr float kSqrt2OverPi = 0.7978845608028654F;
  for (float& v : out.flat()) {
    const float inner = kSqrt2OverPi * (v + 0.044715F * v * v * v);
    v = 0.5F * v * (1.0F + std::tanh(inner));
  }
  flops::add_elementwise(8 * x.size());
  return out;
}

Tensor concat_cols(std::span<const Tensor> parts) {
  require(!parts.empty(), "concat_cols: no parts");
  const std::size_t rows = parts.front().rows();
  std::size_t cols = 0;
  for (const Tensor& p : parts) {
    require(p.rows() == rows, "concat_cols: row mismatch");
    cols += p.cols();
  }
  Tensor out(rows, cols);
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    for (std::size_t r = 0; r < rows; ++r) {
      const auto src = p.row(r);
      std::copy(src.begin(), src.end(), out.row(r).data() + offset);
    }
    offset += p.cols();
  }
  return out;
}

Tensor concat_rows(std::span<const Tensor> parts) {
  require(!parts.empty(), "concat_rows: no parts");
  const std::size_t cols = parts.front().cols();
  std::size_t rows = 0;
  for (const Tensor& p : parts) {
    require(p.cols() == cols, "concat_rows: column mismatch");
    rows += p.rows();
  }
  Tensor out(rows, cols);
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    out.set_rows(offset, p);
    offset += p.rows();
  }
  return out;
}

Tensor mean_rows(const Tensor& x) {
  require(x.rows() > 0, "mean_rows: empty tensor");
  Tensor out(1, x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto in = x.row(r);
    auto o = out.row(0);
    for (std::size_t c = 0; c < in.size(); ++c) o[c] += in[c];
  }
  scale_inplace(out, 1.0F / static_cast<float>(x.rows()));
  return out;
}

std::size_t argmax_row(const Tensor& x, std::size_t row) {
  const auto r = x.row(row);
  return static_cast<std::size_t>(
      std::distance(r.begin(), std::max_element(r.begin(), r.end())));
}

}  // namespace voltage
