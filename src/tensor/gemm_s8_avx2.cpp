// AVX2 instantiation of the blocked int8 GEMM: 6x16 int32 ymm tile fed by
// _mm256_madd_epi16 on int16 k-pair panels. Compiled with -mavx2 (see
// src/tensor/CMakeLists.txt); selected at runtime by gemm_s8.cpp.
#define VOLTAGE_GEMM_NAMESPACE avx2
#include "tensor/gemm_s8_impl.inc"
