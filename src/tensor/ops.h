// Kernels over Tensor. Every GEMM reports its MAC count into
// voltage::flops so the paper's Γ(·) complexity analysis can be verified
// against executed work.
#pragma once

#include "tensor/tensor.h"

namespace voltage {

enum class Trans : std::uint8_t { kNo, kYes };

// C = op(A) * op(B) where op is optional transposition.
// Shapes must conform; throws std::invalid_argument otherwise.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b,
                            Trans ta = Trans::kNo, Trans tb = Trans::kNo);

// Elementwise sum / difference; shapes must match.
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
void add_inplace(Tensor& a, const Tensor& b);
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);

// Adds a 1 x cols bias row to every row of x.
void add_bias_inplace(Tensor& x, const Tensor& bias);

[[nodiscard]] Tensor scale(const Tensor& a, float s);
void scale_inplace(Tensor& a, float s);

// Row-wise softmax; `pre_scale` is applied to logits first
// (the attention 1/sqrt(F_H) factor).
[[nodiscard]] Tensor softmax_rows(const Tensor& x, float pre_scale = 1.0F);

// Row-wise layer normalization with learned gain/bias (1 x cols each).
[[nodiscard]] Tensor layernorm_rows(const Tensor& x, const Tensor& gamma,
                                    const Tensor& beta, float eps = 1e-5F);

[[nodiscard]] Tensor relu(const Tensor& x);
// tanh-approximation GELU as used by BERT/GPT-2.
[[nodiscard]] Tensor gelu(const Tensor& x);

// Horizontal concatenation: all inputs share the row count.
[[nodiscard]] Tensor concat_cols(std::span<const Tensor> parts);
// Vertical concatenation: all inputs share the column count.
[[nodiscard]] Tensor concat_rows(std::span<const Tensor> parts);

// Mean over rows -> 1 x cols (used by classification pooling).
[[nodiscard]] Tensor mean_rows(const Tensor& x);

// Index of the maximum element in a 1 x C tensor.
[[nodiscard]] std::size_t argmax_row(const Tensor& x, std::size_t row);

}  // namespace voltage
