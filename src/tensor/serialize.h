// Byte-accurate tensor serialization for the message fabric.
//
// Wire format: u64 rows, u64 cols, then rows*cols little-endian float32.
// The communication-volume experiments measure *these* byte counts, so the
// format intentionally mirrors what a real system would put on the wire
// (the paper's NF-elements-at-4-bytes accounting plus a fixed 16-byte
// header).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace voltage {

inline constexpr std::size_t kTensorWireHeaderBytes = 2 * sizeof(std::uint64_t);

// Serialized size of a tensor with the given element count.
[[nodiscard]] constexpr std::size_t tensor_wire_bytes(
    std::size_t elements) noexcept {
  return kTensorWireHeaderBytes + elements * sizeof(float);
}

[[nodiscard]] std::vector<std::byte> to_bytes(const Tensor& t);

// Throws std::invalid_argument on malformed input.
[[nodiscard]] Tensor tensor_from_bytes(std::span<const std::byte> bytes);

}  // namespace voltage
