// Byte-accurate tensor serialization for the message fabric.
//
// Wire format: u64 rows, u64 cols, then rows*cols little-endian float32.
// The communication-volume experiments measure *these* byte counts, so the
// format intentionally mirrors what a real system would put on the wire
// (the paper's NF-elements-at-4-bytes accounting plus a fixed 16-byte
// header).
//
// Two receive paths exist: tensor_from_bytes / tensor_from_payload allocate
// a fresh tensor (general case), while deserialize_into copies the payload's
// rows straight into a preallocated buffer at a row offset — the zero-copy
// landing half of the all-gather pipeline. On the send side,
// tensor_payload_view builds a Payload that borrows the tensor's storage
// (header inline, body non-owning, pinned by the shared handle) so large
// activations cross the fabric without ever being serialized into a
// scratch buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/message.h"
#include "tensor/tensor.h"

namespace voltage {

inline constexpr std::size_t kTensorWireHeaderBytes = 2 * sizeof(std::uint64_t);

static_assert(Payload::kInlineHeaderCapacity >= kTensorWireHeaderBytes);

// Serialized size of a tensor with the given element count.
[[nodiscard]] constexpr std::size_t tensor_wire_bytes(
    std::size_t elements) noexcept {
  return kTensorWireHeaderBytes + elements * sizeof(float);
}

// Quantized wire variant (net/quant_codec.h encodes it): the header's cols
// word carries this flag, and the body is rows little-endian float32 row
// scales followed by rows*cols int8 values — symmetric per-row
// quantization, value = scale * q. Every decode path below dequantizes it
// transparently, so receivers are precision-blind.
inline constexpr std::uint64_t kQuantColsFlag = std::uint64_t{1} << 63;

// Serialized size of a quantized [rows x cols] tensor.
[[nodiscard]] constexpr std::size_t quant_wire_bytes(
    std::size_t rows, std::size_t cols) noexcept {
  return kTensorWireHeaderBytes + rows * sizeof(float) + rows * cols;
}

// Parsed wire header.
struct WireShape {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  bool quantized = false;
};

[[nodiscard]] std::vector<std::byte> to_bytes(const Tensor& t);

// Wire payload borrowing `t`'s storage: the 16-byte header lives inline in
// the Payload, the float body is a non-owning span into *t, and the shared
// handle keeps the tensor alive until every copy of the payload is dropped.
[[nodiscard]] Payload tensor_payload_view(std::shared_ptr<const Tensor> t);

// Throws std::invalid_argument on malformed input. Hardened against headers
// whose rows*cols (or total byte size) overflows — a hostile header can
// never bypass the size check by wrapping the element count.
[[nodiscard]] Tensor tensor_from_bytes(std::span<const std::byte> bytes);

// Same, reading a fabric payload in either representation (owned or view).
[[nodiscard]] Tensor tensor_from_payload(const Payload& payload);

// Zero-allocation receive: validates the payload's header (same hardening
// as tensor_from_bytes), requires its column count to match `dst` (unless
// the payload is 0-row) and its rows to fit at [row_begin, row_begin+rows),
// then copies the row block straight into `dst`. Returns the parsed shape.
WireShape deserialize_into(const Payload& payload, Tensor& dst,
                           std::size_t row_begin);

}  // namespace voltage
