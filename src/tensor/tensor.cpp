#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

namespace voltage {

namespace {
// Materialized transposes are a smell on the GEMM hot path — the packed
// kernels read transposed operands in place. Tests pin the count at zero
// around matmul(..., Trans::kYes).
std::atomic<std::uint64_t> g_transpose_copies{0};
}  // namespace

Tensor::Tensor(std::initializer_list<std::initializer_list<float>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Tensor: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Tensor Tensor::filled(std::size_t rows, std::size_t cols, float value) {
  Tensor t(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::identity(std::size_t n) {
  Tensor t(n, n);
  for (std::size_t i = 0; i < n; ++i) t(i, i) = 1.0F;
  return t;
}

Tensor Tensor::slice_rows(std::size_t begin, std::size_t end) const {
  if (begin > end || end > rows_) {
    throw std::out_of_range("Tensor::slice_rows: bad range");
  }
  Tensor out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_),
            out.data_.begin());
  return out;
}

Tensor Tensor::slice_cols(std::size_t begin, std::size_t end) const {
  if (begin > end || end > cols_) {
    throw std::out_of_range("Tensor::slice_cols: bad range");
  }
  Tensor out(rows_, end - begin);
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* src = data_.data() + r * cols_ + begin;
    std::copy(src, src + (end - begin), out.data() + r * out.cols());
  }
  return out;
}

std::uint64_t Tensor::transpose_copy_count() noexcept {
  return g_transpose_copies.load(std::memory_order_relaxed);
}

Tensor Tensor::transposed() const {
  g_transpose_copies.fetch_add(1, std::memory_order_relaxed);
  Tensor out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

void Tensor::set_rows(std::size_t row_begin, const Tensor& block) {
  if (block.cols() != cols_ || row_begin + block.rows() > rows_) {
    throw std::out_of_range("Tensor::set_rows: block does not fit");
  }
  std::copy(block.data_.begin(), block.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(row_begin * cols_));
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  float worst = 0.0F;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    worst = std::max(worst, std::fabs(fa[i] - fb[i]));
  }
  return worst;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  return a.same_shape(b) && max_abs_diff(a, b) <= tol;
}

}  // namespace voltage
