// Cache-blocked, register-tiled GEMM kernels with operand packing.
//
// All kernels compute C += op(A) · op(B) on row-major float data, where the
// transposed variants read the stored operand through its packing routine —
// matmul never materializes a transposed copy of A or B.
//
// The implementation (gemm_impl.inc) is compiled three times: baseline ISA
// (gemm_base.cpp, 4x8 tile), AVX2+FMA (gemm_avx2.cpp, 6x16 ymm tile), and
// AVX-512 (gemm_avx512.cpp, 8x32 zmm tile). The entry points below dispatch
// once per process on __builtin_cpu_supports, always pairing the kernel with
// the reference from the *same* TU so both share one FP-contraction choice.
//
// Bitwise contract (load-bearing; tests/gemm_test.cpp enforces it):
//   * Every output element accumulates its k products in strictly increasing
//     k order, starting from the existing C value. The micro-kernel tile is
//     loaded from C, accumulated in registers, and stored back once per
//     k-block, so the per-element FP chain is identical to the naive
//     i-j-k reference loop compiled alongside it.
//   * Parallel callers split the *row* dimension only (see ops.cpp); each
//     row's chain lives entirely inside one chunk, so results are bitwise
//     identical at any intra-op thread count, and a row-slice of a larger
//     GEMM equals the same rows of the full GEMM — the distributed-vs-single
//     device equivalence the runtime tests rely on.
#pragma once

#include <cstddef>

namespace voltage::detail {

// Baseline register tile (the AVX2 path uses 6x16). kGemmMr doubles as the
// minimum row-split quantum for threaded callers.
inline constexpr std::size_t kGemmMr = 4;
inline constexpr std::size_t kGemmNr = 8;

// Cache blocking: the packed B panel (kKc x NR) stays L1-resident across the
// ir sweep; the packed A block (kMc x kKc) targets L2; kNc bounds the
// packed-B workspace.
inline constexpr std::size_t kGemmKc = 256;
inline constexpr std::size_t kGemmMc = 128;
inline constexpr std::size_t kGemmNc = 1024;

// C[i0:i1, :] += op(A)[i0:i1, :] · op(B). The row range selects output rows,
// so callers can split m across threads without touching the contract above.
// `m` is always the full op(A) row count (it fixes the stored strides);
// A is stored m x k when !trans_a, k x m when trans_a; likewise B is
// k x n / n x k. C is the full m x n matrix with row stride n.
void gemm_blocked(const float* a, bool trans_a, const float* b, bool trans_b,
                  float* c, std::size_t m, std::size_t i0, std::size_t i1,
                  std::size_t k, std::size_t n);

// Dedicated entry points per operand layout (whole problem, single thread).
void gemm_nn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n);
void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n);
void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n);
void gemm_tt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n);

// Naive i-j-k triple loop, one accumulator per element in strictly
// increasing k order — the bitwise reference the tiled kernels must match.
// Dispatched to the same TU as the kernels above.
void gemm_reference(const float* a, bool trans_a, const float* b, bool trans_b,
                    float* c, std::size_t m, std::size_t k, std::size_t n);

// ISA variant the dispatcher selected: "avx512", "avx2", or "base".
const char* gemm_kernel_arch() noexcept;

}  // namespace voltage::detail
