#include "tensor/flops.h"

namespace voltage::flops {

namespace {
thread_local std::uint64_t g_matmul_macs = 0;
thread_local std::uint64_t g_elementwise = 0;
}  // namespace

std::uint64_t matmul_macs() noexcept { return g_matmul_macs; }
std::uint64_t elementwise_ops() noexcept { return g_elementwise; }

void add_matmul_macs(std::uint64_t n) noexcept { g_matmul_macs += n; }
void add_elementwise(std::uint64_t n) noexcept { g_elementwise += n; }

void reset() noexcept {
  g_matmul_macs = 0;
  g_elementwise = 0;
}

}  // namespace voltage::flops
