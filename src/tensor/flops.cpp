#include "tensor/flops.h"

#include <atomic>

namespace voltage::flops {

namespace {
// Process-wide atomics: kernels now run on pool workers and runtime device
// threads, and every thread's MACs must land in the same ledger. Relaxed
// ordering is enough — tests only read after joining/awaiting the work.
std::atomic<std::uint64_t> g_matmul_macs{0};
std::atomic<std::uint64_t> g_elementwise{0};
}  // namespace

std::uint64_t matmul_macs() noexcept {
  return g_matmul_macs.load(std::memory_order_relaxed);
}

std::uint64_t elementwise_ops() noexcept {
  return g_elementwise.load(std::memory_order_relaxed);
}

void add_matmul_macs(std::uint64_t n) noexcept {
  g_matmul_macs.fetch_add(n, std::memory_order_relaxed);
}

void add_elementwise(std::uint64_t n) noexcept {
  g_elementwise.fetch_add(n, std::memory_order_relaxed);
}

void reset() noexcept {
  g_matmul_macs.store(0, std::memory_order_relaxed);
  g_elementwise.store(0, std::memory_order_relaxed);
}

}  // namespace voltage::flops
