// Baseline-ISA instantiation of the blocked GEMM (4x8 tile on x86-64 SSE2).
// The dispatcher in gemm.cpp falls back here when AVX2+FMA is unavailable.
#define VOLTAGE_GEMM_NAMESPACE base
#include "tensor/gemm_impl.inc"
