#include "tensor/serialize.h"

#include <cstring>
#include <stdexcept>

namespace voltage {

std::vector<std::byte> to_bytes(const Tensor& t) {
  std::vector<std::byte> out(tensor_wire_bytes(t.size()));
  const std::uint64_t rows = t.rows();
  const std::uint64_t cols = t.cols();
  std::memcpy(out.data(), &rows, sizeof(rows));
  std::memcpy(out.data() + sizeof(rows), &cols, sizeof(cols));
  std::memcpy(out.data() + kTensorWireHeaderBytes, t.data(), t.byte_size());
  return out;
}

Tensor tensor_from_bytes(std::span<const std::byte> bytes) {
  if (bytes.size() < kTensorWireHeaderBytes) {
    throw std::invalid_argument("tensor_from_bytes: truncated header");
  }
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::memcpy(&rows, bytes.data(), sizeof(rows));
  std::memcpy(&cols, bytes.data() + sizeof(rows), sizeof(cols));
  const std::size_t expected = tensor_wire_bytes(rows * cols);
  if (bytes.size() != expected) {
    throw std::invalid_argument("tensor_from_bytes: payload size mismatch");
  }
  Tensor t(rows, cols);
  std::memcpy(t.data(), bytes.data() + kTensorWireHeaderBytes, t.byte_size());
  return t;
}

}  // namespace voltage
