#include "tensor/serialize.h"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace voltage {

namespace {

// Parse and validate the 16-byte wire header against the total payload size.
// Rejects headers whose rows*cols (or the implied byte size) would overflow,
// so `total == tensor_wire_bytes(elements)` can never be satisfied by a
// wrapped element count.
WireShape parse_wire_header(std::span<const std::byte> head, std::size_t total,
                            const char* who) {
  if (head.size() < kTensorWireHeaderBytes) {
    throw std::invalid_argument(std::string(who) + ": truncated header");
  }
  WireShape shape;
  std::memcpy(&shape.rows, head.data(), sizeof(shape.rows));
  std::memcpy(&shape.cols, head.data() + sizeof(shape.rows),
              sizeof(shape.cols));
  if (shape.cols != 0 &&
      shape.rows > std::numeric_limits<std::uint64_t>::max() / shape.cols) {
    throw std::invalid_argument(std::string(who) +
                                ": element count overflows in header");
  }
  const std::uint64_t elements = shape.rows * shape.cols;
  constexpr std::uint64_t kMaxElements =
      (std::numeric_limits<std::size_t>::max() - kTensorWireHeaderBytes) /
      sizeof(float);
  if (elements > kMaxElements) {
    throw std::invalid_argument(std::string(who) +
                                ": byte size overflows in header");
  }
  if (total != tensor_wire_bytes(static_cast<std::size_t>(elements))) {
    throw std::invalid_argument(std::string(who) + ": payload size mismatch");
  }
  return shape;
}

// The float data of a payload in either representation: past the inline
// header for a view, past the leading 16 bytes of the flat buffer otherwise.
std::span<const std::byte> payload_data(const Payload& payload) {
  return payload.body().empty() ? payload.head().subspan(kTensorWireHeaderBytes)
                                : payload.body();
}

}  // namespace

std::vector<std::byte> to_bytes(const Tensor& t) {
  std::vector<std::byte> out(tensor_wire_bytes(t.size()));
  const std::uint64_t rows = t.rows();
  const std::uint64_t cols = t.cols();
  std::memcpy(out.data(), &rows, sizeof(rows));
  std::memcpy(out.data() + sizeof(rows), &cols, sizeof(cols));
  std::memcpy(out.data() + kTensorWireHeaderBytes, t.data(), t.byte_size());
  return out;
}

Payload tensor_payload_view(std::shared_ptr<const Tensor> t) {
  std::array<std::byte, Payload::kInlineHeaderCapacity> header{};
  const std::uint64_t rows = t->rows();
  const std::uint64_t cols = t->cols();
  std::memcpy(header.data(), &rows, sizeof(rows));
  std::memcpy(header.data() + sizeof(rows), &cols, sizeof(cols));
  const std::span<const std::byte> body(
      reinterpret_cast<const std::byte*>(t->data()), t->byte_size());
  return Payload::view(header, kTensorWireHeaderBytes, body, std::move(t));
}

Tensor tensor_from_bytes(std::span<const std::byte> bytes) {
  const WireShape shape =
      parse_wire_header(bytes, bytes.size(), "tensor_from_bytes");
  Tensor t(shape.rows, shape.cols);
  std::memcpy(t.data(), bytes.data() + kTensorWireHeaderBytes, t.byte_size());
  return t;
}

Tensor tensor_from_payload(const Payload& payload) {
  const WireShape shape =
      parse_wire_header(payload.head(), payload.size(), "tensor_from_payload");
  Tensor t(shape.rows, shape.cols);
  std::memcpy(t.data(), payload_data(payload).data(), t.byte_size());
  return t;
}

WireShape deserialize_into(const Payload& payload, Tensor& dst,
                           std::size_t row_begin) {
  const WireShape shape =
      parse_wire_header(payload.head(), payload.size(), "deserialize_into");
  if (shape.rows == 0) return shape;
  if (shape.cols != dst.cols()) {
    throw std::invalid_argument("deserialize_into: column count mismatch");
  }
  if (row_begin > dst.rows() || shape.rows > dst.rows() - row_begin) {
    throw std::invalid_argument("deserialize_into: rows out of range");
  }
  std::memcpy(dst.data() + row_begin * dst.cols(),
              payload_data(payload).data(),
              static_cast<std::size_t>(shape.rows) * shape.cols *
                  sizeof(float));
  return shape;
}

}  // namespace voltage
