#include "tensor/serialize.h"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace voltage {

namespace {

// Parse and validate the 16-byte wire header against the total payload size.
// Rejects headers whose rows*cols (or the implied byte size) would overflow,
// so `total == tensor_wire_bytes(elements)` can never be satisfied by a
// wrapped element count.
WireShape parse_wire_header(std::span<const std::byte> head, std::size_t total,
                            const char* who) {
  if (head.size() < kTensorWireHeaderBytes) {
    throw std::invalid_argument(std::string(who) + ": truncated header");
  }
  WireShape shape;
  std::uint64_t cols_word = 0;
  std::memcpy(&shape.rows, head.data(), sizeof(shape.rows));
  std::memcpy(&cols_word, head.data() + sizeof(shape.rows), sizeof(cols_word));
  shape.quantized = (cols_word & kQuantColsFlag) != 0;
  shape.cols = cols_word & ~kQuantColsFlag;
  if (shape.cols != 0 &&
      shape.rows > std::numeric_limits<std::uint64_t>::max() / shape.cols) {
    throw std::invalid_argument(std::string(who) +
                                ": element count overflows in header");
  }
  const std::uint64_t elements = shape.rows * shape.cols;
  constexpr std::uint64_t kMaxElements =
      (std::numeric_limits<std::size_t>::max() - kTensorWireHeaderBytes) /
      sizeof(float);
  if (elements > kMaxElements) {
    throw std::invalid_argument(std::string(who) +
                                ": byte size overflows in header");
  }
  std::uint64_t expected = 0;
  if (shape.quantized) {
    // rows float scales + rows*cols int8: guard each addition separately so
    // a hostile header can never wrap the expected size back onto `total`.
    constexpr std::uint64_t kMax = std::numeric_limits<std::size_t>::max();
    if (shape.rows > (kMax - kTensorWireHeaderBytes) / sizeof(float)) {
      throw std::invalid_argument(std::string(who) +
                                  ": byte size overflows in header");
    }
    const std::uint64_t scales = shape.rows * sizeof(float);
    if (elements > kMax - kTensorWireHeaderBytes - scales) {
      throw std::invalid_argument(std::string(who) +
                                  ": byte size overflows in header");
    }
    expected = kTensorWireHeaderBytes + scales + elements;
  } else {
    expected = tensor_wire_bytes(static_cast<std::size_t>(elements));
  }
  if (total != expected) {
    throw std::invalid_argument(std::string(who) + ": payload size mismatch");
  }
  return shape;
}

// The float data of a payload in either representation: past the inline
// header for a view, past the leading 16 bytes of the flat buffer otherwise.
std::span<const std::byte> payload_data(const Payload& payload) {
  return payload.body().empty() ? payload.head().subspan(kTensorWireHeaderBytes)
                                : payload.body();
}

// Dequantize a quantized wire body (rows float32 scales, then rows*cols
// int8) into rows*cols floats at `dst` (contiguous, row-major).
void dequantize_body(std::span<const std::byte> data, float* dst,
                     std::size_t rows, std::size_t cols) {
  const std::byte* scale_bytes = data.data();
  const auto* q =
      reinterpret_cast<const std::int8_t*>(data.data() + rows * sizeof(float));
  for (std::size_t r = 0; r < rows; ++r) {
    float scale = 0.0F;
    std::memcpy(&scale, scale_bytes + r * sizeof(float), sizeof(float));
    const std::int8_t* row = q + r * cols;
    float* out = dst + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      out[c] = scale * static_cast<float>(row[c]);
    }
  }
}

}  // namespace

std::vector<std::byte> to_bytes(const Tensor& t) {
  std::vector<std::byte> out(tensor_wire_bytes(t.size()));
  const std::uint64_t rows = t.rows();
  const std::uint64_t cols = t.cols();
  std::memcpy(out.data(), &rows, sizeof(rows));
  std::memcpy(out.data() + sizeof(rows), &cols, sizeof(cols));
  std::memcpy(out.data() + kTensorWireHeaderBytes, t.data(), t.byte_size());
  return out;
}

Payload tensor_payload_view(std::shared_ptr<const Tensor> t) {
  std::array<std::byte, Payload::kInlineHeaderCapacity> header{};
  const std::uint64_t rows = t->rows();
  const std::uint64_t cols = t->cols();
  std::memcpy(header.data(), &rows, sizeof(rows));
  std::memcpy(header.data() + sizeof(rows), &cols, sizeof(cols));
  const std::span<const std::byte> body(
      reinterpret_cast<const std::byte*>(t->data()), t->byte_size());
  return Payload::view(header, kTensorWireHeaderBytes, body, std::move(t));
}

Tensor tensor_from_bytes(std::span<const std::byte> bytes) {
  const WireShape shape =
      parse_wire_header(bytes, bytes.size(), "tensor_from_bytes");
  Tensor t(shape.rows, shape.cols);
  const auto data = bytes.subspan(kTensorWireHeaderBytes);
  if (shape.quantized) {
    dequantize_body(data, t.data(), shape.rows, shape.cols);
  } else {
    std::memcpy(t.data(), data.data(), t.byte_size());
  }
  return t;
}

Tensor tensor_from_payload(const Payload& payload) {
  const WireShape shape =
      parse_wire_header(payload.head(), payload.size(), "tensor_from_payload");
  Tensor t(shape.rows, shape.cols);
  if (shape.quantized) {
    dequantize_body(payload_data(payload), t.data(), shape.rows, shape.cols);
  } else {
    std::memcpy(t.data(), payload_data(payload).data(), t.byte_size());
  }
  return t;
}

WireShape deserialize_into(const Payload& payload, Tensor& dst,
                           std::size_t row_begin) {
  const WireShape shape =
      parse_wire_header(payload.head(), payload.size(), "deserialize_into");
  if (shape.rows == 0) return shape;
  if (shape.cols != dst.cols()) {
    throw std::invalid_argument("deserialize_into: column count mismatch");
  }
  if (row_begin > dst.rows() || shape.rows > dst.rows() - row_begin) {
    throw std::invalid_argument("deserialize_into: rows out of range");
  }
  if (shape.quantized) {
    dequantize_body(payload_data(payload), dst.data() + row_begin * dst.cols(),
                    shape.rows, shape.cols);
  } else {
    std::memcpy(dst.data() + row_begin * dst.cols(),
                payload_data(payload).data(),
                static_cast<std::size_t>(shape.rows) * shape.cols *
                    sizeof(float));
  }
  return shape;
}

}  // namespace voltage
