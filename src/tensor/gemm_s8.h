// Cache-blocked, register-tiled int8 GEMM: C += A · B with int8 operands
// and int32 accumulation, the compute half of the quantized path
// (quant/quantized_tensor.h rescales the int32 result by the per-row
// activation and per-column weight scales).
//
// Mirrors the fp32 dispatch in gemm.h: the implementation
// (gemm_s8_impl.inc) is compiled as baseline (gemm_s8_base.cpp),
// AVX2 (gemm_s8_avx2.cpp) and AVX-512BW (gemm_s8_avx512.cpp) TUs, selected
// once per process on __builtin_cpu_supports. Operands pack into int16
// k-pair panels so the vector kernels run on _mm*_madd_epi16 — two
// products summed per 32-bit lane; with inputs clamped to [-127, 127]
// (never -128) the pairwise sum is at most 2 * 127^2 = 32258, so the int16
// madd never saturates and the int32 accumulator is exact for any
// k < 2^31 / 32258 ≈ 66k.
//
// Exactness contract (stronger than fp32's bitwise contract, and free):
// integer addition is associative, so every ISA variant, the reference, and
// any row-split parallelization produce identical int32 results — no
// per-TU contraction pairing needed. tests/quant_test.cpp enforces it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace voltage::detail {

// Minimum row-split quantum for threaded callers (matches the largest
// register tile's row count so chunks always cover whole tiles).
inline constexpr std::size_t kGemmS8Mr = 8;

// C[i0:i1, :] += A[i0:i1, :] · B, with A stored m x k row-major int8, B
// stored k x n row-major int8, C the full m x n int32 matrix (row stride
// n). The row range lets callers split m across threads.
void gemm_s8_blocked(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t i0,
                     std::size_t i1, std::size_t k, std::size_t n);

// Whole problem, single thread.
void gemm_s8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
             std::size_t m, std::size_t k, std::size_t n);

// Naive i-j-k triple loop — the exact-integer reference every variant must
// equal bitwise.
void gemm_s8_reference(const std::int8_t* a, const std::int8_t* b,
                       std::int32_t* c, std::size_t m, std::size_t k,
                       std::size_t n);

// ISA variant the dispatcher selected: "avx512", "avx2", or "base".
const char* gemm_s8_kernel_arch() noexcept;

}  // namespace voltage::detail
