// AVX-512 instantiation of the blocked GEMM. This TU is compiled with
// -mavx512f -mfma (see CMakeLists.txt) so the 8x32 micro-kernel uses zmm
// fused multiply-adds; the dispatcher in gemm.cpp selects it at runtime via
// __builtin_cpu_supports, so the binary stays safe on narrower x86-64.
// Non-x86 builds compile this TU empty and never reference the namespace.
#if defined(__x86_64__) || defined(_M_X64)
#define VOLTAGE_GEMM_NAMESPACE avx512
#include "tensor/gemm_impl.inc"
#endif
