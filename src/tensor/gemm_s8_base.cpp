// Baseline-ISA instantiation of the blocked int8 GEMM (4x8 scalar tile).
// The dispatcher in gemm_s8.cpp falls back here when AVX2 is unavailable.
#define VOLTAGE_GEMM_NAMESPACE base
#include "tensor/gemm_s8_impl.inc"
