#include "partition/order.h"

#include <stdexcept>

namespace voltage {

bool theorem2_prefers_reordered(const AttentionDims& dims) {
  // 1/P - 1/N > (F - F_H) / (F * F_H), cross-multiplied to exact integers:
  // (N - P) * F * F_H > P * N * (F - F_H).
  const std::uint64_t lhs = static_cast<std::uint64_t>(dims.n - dims.p) *
                            dims.f * dims.fh;
  const std::uint64_t rhs = static_cast<std::uint64_t>(dims.p) * dims.n *
                            (dims.f - dims.fh);
  return lhs > rhs;
}

AttentionOrder select_order(OrderPolicy policy, const AttentionDims& dims) {
  switch (policy) {
    case OrderPolicy::kAlwaysNaive:
      return AttentionOrder::kNaive;
    case OrderPolicy::kAlwaysReordered:
      return AttentionOrder::kReordered;
    case OrderPolicy::kAdaptive:
      return theorem2_prefers_reordered(dims) ? AttentionOrder::kReordered
                                              : AttentionOrder::kNaive;
  }
  throw std::logic_error("select_order: bad policy");
}

const char* to_string(AttentionOrder order) noexcept {
  return order == AttentionOrder::kNaive ? "naive(Eq.3)" : "reordered(Eq.8)";
}

}  // namespace voltage
