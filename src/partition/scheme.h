// Partition scheme (paper §V-B): a vector of ratios P = [p_1 ... p_K] with
// 0 <= p_i <= 1 and sum(p_i) = 1. Device i computes positions
// [N * sum_{j<i} p_j, N * sum_{j<=i} p_j). Ranges are derived from rounded
// cumulative sums so that for ANY ratio vector and ANY N the K ranges are
// pairwise disjoint and exactly cover [0, N) — the paper's bijectivity
// conditions.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "partition/range.h"

namespace voltage {

class PartitionScheme {
 public:
  // Throws std::invalid_argument unless ratios are in [0,1] and sum to 1
  // (within 1e-6, then normalized exactly).
  explicit PartitionScheme(std::vector<double> ratios);

  // Even 1/K split across `devices`.
  [[nodiscard]] static PartitionScheme even(std::size_t devices);

  // Ratios proportional to the given non-negative weights (heterogeneous
  // clusters: weight by device speed).
  [[nodiscard]] static PartitionScheme proportional(
      const std::vector<double>& weights);

  // Parses a comma-separated weight list ("4,2,1,1"); weights are
  // normalized, so they need not sum to 1. Throws on malformed input.
  [[nodiscard]] static PartitionScheme parse(std::string_view text);

  [[nodiscard]] std::size_t devices() const noexcept { return ratios_.size(); }
  [[nodiscard]] const std::vector<double>& ratios() const noexcept {
    return ratios_;
  }

  // Position range owned by `device` for an input of length `n`.
  [[nodiscard]] Range range_for(std::size_t device, std::size_t n) const;

  // All K ranges for an input of length `n` (disjoint cover of [0, n)).
  [[nodiscard]] std::vector<Range> ranges(std::size_t n) const;

 private:
  std::vector<double> ratios_;
  std::vector<double> cumulative_;  // cumulative_[i] = sum of ratios_[0..i]
};

}  // namespace voltage
