#include "partition/flop_model.h"

#include <limits>
#include <stdexcept>

#include "partition/order.h"

namespace voltage {

namespace {

using U = std::uint64_t;

void validate(const AttentionDims& d) {
  if (d.n == 0 || d.p == 0 || d.f == 0 || d.fh == 0 || d.p > d.n) {
    throw std::invalid_argument("AttentionDims: need 0 < P <= N, F, F_H > 0");
  }
}

}  // namespace

std::uint64_t qk_cost(QkOrder order, const AttentionDims& d) {
  validate(d);
  const U n = d.n;
  const U p = d.p;
  const U f = d.f;
  const U fh = d.fh;
  switch (order) {
    case QkOrder::kLeftToRight:  // Eq. (10): 2PFF_H + PFN
      return 2 * p * f * fh + p * f * n;
    case QkOrder::kProjectBoth:  // Eq. (11): PFF_H + NFF_H + PNF_H
      return p * f * fh + n * f * fh + p * n * fh;
    case QkOrder::kFuseWeightsLeft:  // Eq. (12): PF^2 + PFN
      return p * f * f + p * f * n;
    case QkOrder::kFuseWeightsRight:  // Eq. (13): NF^2 + PFN
      return n * f * f + p * f * n;
    case QkOrder::kInnermostFirst:  // Eq. (14): 2NFF_H + PFN (see header note)
      return 2 * n * f * fh + p * f * n;
  }
  throw std::logic_error("qk_cost: bad order");
}

std::uint64_t sv_cost(SvOrder order, const AttentionDims& d) {
  validate(d);
  const U n = d.n;
  const U p = d.p;
  const U f = d.f;
  const U fh = d.fh;
  switch (order) {
    case SvOrder::kProjectV:  // Eq. (6a): PNF_H + NFF_H
      return p * n * fh + n * f * fh;
    case SvOrder::kAggregateFirst:  // Eq. (6b): PNF + PFF_H
      return p * n * f + p * f * fh;
  }
  throw std::logic_error("sv_cost: bad order");
}

std::uint64_t attention_cost(QkOrder qk, SvOrder sv, const AttentionDims& d) {
  return qk_cost(qk, d) + sv_cost(sv, d);
}

OrderChoice cheapest_order_exhaustive(const AttentionDims& d) {
  OrderChoice best{QkOrder::kLeftToRight, SvOrder::kProjectV,
                   std::numeric_limits<std::uint64_t>::max()};
  for (const QkOrder qk : kAllQkOrders) {
    for (const SvOrder sv : kAllSvOrders) {
      const std::uint64_t cost = attention_cost(qk, sv, d);
      if (cost < best.cost) best = {qk, sv, cost};
    }
  }
  return best;
}

std::uint64_t gamma_eq3(const AttentionDims& d) {
  return attention_cost(QkOrder::kProjectBoth, SvOrder::kProjectV, d);
}

std::uint64_t gamma_eq8(const AttentionDims& d) {
  return attention_cost(QkOrder::kLeftToRight, SvOrder::kAggregateFirst, d);
}

std::uint64_t gamma_full_attention_head(std::size_t n, std::size_t f,
                                        std::size_t fh) {
  return gamma_eq3({.n = n, .p = n, .f = f, .fh = fh});
}

std::uint64_t gamma_partitioned_layer(const LayerConfig& config, std::size_t n,
                                      std::size_t p, AttentionOrder order) {
  config.validate();
  const AttentionDims dims{
      .n = n, .p = p, .f = config.hidden, .fh = config.head_dim};
  const U per_head =
      order == AttentionOrder::kReordered ? gamma_eq8(dims) : gamma_eq3(dims);
  const U heads = config.heads;
  const U f = config.hidden;
  const U ffn = config.ffn_dim;
  const U pp = p;
  // H heads + W_O projection (P x H*F_H times H*F_H x F) + two FFN GEMMs.
  return heads * per_head + pp * f * f + 2 * pp * f * ffn;
}

std::uint64_t gamma_full_layer(const LayerConfig& config, std::size_t n) {
  return gamma_partitioned_layer(config, n, n, AttentionOrder::kNaive);
}

}  // namespace voltage
