#include "partition/partitioned_attention.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.h"
#include "tensor/ops.h"
#include "transformer/attention.h"

namespace voltage {

namespace {

// Both orders factor into a prologue that reads only the partition's own
// rows and a finish that needs the full sequence. The fused head functions
// below route through the same finish helpers so the split and unsplit
// evaluations share every FP chain bitwise.

// Eq. (3) prologue: Q_p = x_p W_Q  [P x F_H].
Tensor head_prologue_naive(const Tensor& xp, const HeadWeights& w) {
  return matmul(xp, w.wq);
}

// Eq. (8) prologue: (x_p W_Q) W_K^T  [P x F].
Tensor head_prologue_reordered(const Tensor& xp, const HeadWeights& w) {
  return matmul(matmul(xp, w.wq), w.wk, Trans::kNo, Trans::kYes);
}

// Eq. (3) finish: S = softmax(Q_p (x W_K)^T / sqrt(F_H)), A_p = S (x W_V).
Tensor head_finish_naive(const Tensor& x, const Tensor& qp, Range p,
                         const HeadWeights& w, std::size_t head_dim,
                         bool causal) {
  const Tensor k = matmul(x, w.wk);
  Tensor scores = matmul(qp, k, Trans::kNo, Trans::kYes);
  if (causal) apply_causal_mask(scores, p.begin);
  const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(head_dim));
  const Tensor s = softmax_rows(scores, inv_sqrt);
  return matmul(s, matmul(x, w.wv));
}

// Eq. (8) finish: S = softmax(qk x^T / sqrt(F_H)), A_p = (S x) W_V.
// K and V are never materialized; all intermediates are P-sized.
Tensor head_finish_reordered(const Tensor& x, const Tensor& qk, Range p,
                             const HeadWeights& w, std::size_t head_dim,
                             bool causal) {
  Tensor scores = matmul(qk, x, Trans::kNo, Trans::kYes);  // P x N
  if (causal) apply_causal_mask(scores, p.begin);
  const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(head_dim));
  const Tensor s = softmax_rows(scores, inv_sqrt);
  return matmul(matmul(s, x), w.wv);
}

Tensor head_partition_naive(const Tensor& x, const Tensor& xp, Range p,
                            const HeadWeights& w, std::size_t head_dim,
                            bool causal) {
  return head_finish_naive(x, head_prologue_naive(xp, w), p, w, head_dim,
                           causal);
}

Tensor head_partition_reordered(const Tensor& x, const Tensor& xp, Range p,
                                const HeadWeights& w, std::size_t head_dim,
                                bool causal) {
  return head_finish_reordered(x, head_prologue_reordered(xp, w), p, w,
                               head_dim, causal);
}

}  // namespace

Tensor attention_head_partition(const Tensor& x, Range p, const HeadWeights& w,
                                std::size_t head_dim, bool causal,
                                AttentionOrder order) {
  if (p.end > x.rows()) {
    throw std::out_of_range("attention_head_partition: range exceeds input");
  }
  const Tensor xp = x.slice_rows(p.begin, p.end);
  return order == AttentionOrder::kReordered
             ? head_partition_reordered(x, xp, p, w, head_dim, causal)
             : head_partition_naive(x, xp, p, w, head_dim, causal);
}

Tensor multi_head_attention_partition(const Tensor& x, Range p,
                                      const AttentionWeights& w,
                                      const LayerConfig& config,
                                      OrderPolicy policy) {
  if (p.empty()) return Tensor(0, config.hidden);
  const AttentionDims dims{.n = x.rows(),
                           .p = p.size(),
                           .f = config.hidden,
                           .fh = config.head_dim};
  const AttentionOrder order = select_order(policy, dims);

  // Heads are independent; each slot is written by exactly one chunk and a
  // head's own FP chains are untouched by the split, so the concatenated
  // result is bitwise identical at any intra-op thread count — and matches
  // the single-device evaluation of the same rows.
  std::vector<Tensor> head_outputs(w.heads.size());
  parallel_for(std::size_t{0}, w.heads.size(), std::size_t{1},
               [&](std::size_t h0, std::size_t h1) {
                 for (std::size_t h = h0; h < h1; ++h) {
                   head_outputs[h] = attention_head_partition(
                       x, p, w.heads[h], config.head_dim, config.causal,
                       order);
                 }
               });
  Tensor out = matmul(concat_cols(head_outputs), w.wo);
  add_bias_inplace(out, w.bo);
  return out;
}

AttentionPrologue attention_prologue(const Tensor& xp, std::size_t n_total,
                                     Range p, const AttentionWeights& w,
                                     const LayerConfig& config,
                                     OrderPolicy policy) {
  AttentionPrologue prologue;
  if (p.empty()) return prologue;
  if (xp.rows() != p.size()) {
    throw std::out_of_range("attention_prologue: xp/range row mismatch");
  }
  const AttentionDims dims{.n = n_total,
                           .p = p.size(),
                           .f = config.hidden,
                           .fh = config.head_dim};
  prologue.order = select_order(policy, dims);
  prologue.per_head.resize(w.heads.size());
  parallel_for(std::size_t{0}, w.heads.size(), std::size_t{1},
               [&](std::size_t h0, std::size_t h1) {
                 for (std::size_t h = h0; h < h1; ++h) {
                   prologue.per_head[h] =
                       prologue.order == AttentionOrder::kReordered
                           ? head_prologue_reordered(xp, w.heads[h])
                           : head_prologue_naive(xp, w.heads[h]);
                 }
               });
  return prologue;
}

Tensor multi_head_attention_with_prologue(const Tensor& x, Range p,
                                          const AttentionWeights& w,
                                          const LayerConfig& config,
                                          const AttentionPrologue& prologue) {
  if (p.empty()) return Tensor(0, config.hidden);
  if (p.end > x.rows()) {
    throw std::out_of_range(
        "multi_head_attention_with_prologue: range exceeds input");
  }
  if (prologue.per_head.size() != w.heads.size()) {
    throw std::out_of_range(
        "multi_head_attention_with_prologue: prologue head count mismatch");
  }
  std::vector<Tensor> head_outputs(w.heads.size());
  parallel_for(std::size_t{0}, w.heads.size(), std::size_t{1},
               [&](std::size_t h0, std::size_t h1) {
                 for (std::size_t h = h0; h < h1; ++h) {
                   head_outputs[h] =
                       prologue.order == AttentionOrder::kReordered
                           ? head_finish_reordered(x, prologue.per_head[h], p,
                                                   w.heads[h], config.head_dim,
                                                   config.causal)
                           : head_finish_naive(x, prologue.per_head[h], p,
                                               w.heads[h], config.head_dim,
                                               config.causal);
                 }
               });
  Tensor out = matmul(concat_cols(head_outputs), w.wo);
  add_bias_inplace(out, w.bo);
  return out;
}

}  // namespace voltage
