// Self-attention computation orders (paper §IV).
//
// Theorem 2 proves only two of the ten possible multiplication orders can be
// optimal for multi-head attention (H >= 2, H*F_H = F):
//   kNaive     — Eq. (3):  softmax((x_p W_Q)(x W_K)^T / sqrt(F_H)) (x W_V)
//                pre-computes K and V; cost has a 2*N*F*F_H term that does
//                not shrink with the partition.
//   kReordered — Eq. (8):  (softmax(((x_p W_Q) W_K^T) x^T / sqrt(F_H)) x) W_V
//                never materializes K or V; every term scales with P.
// The adaptive policy picks per layer-settings using the exact Theorem-2
// threshold  1/P - 1/N > (F - F_H) / (F * F_H).
#pragma once

#include <cstdint>

#include "partition/flop_model.h"

namespace voltage {

enum class AttentionOrder : std::uint8_t { kNaive, kReordered };

enum class OrderPolicy : std::uint8_t {
  kAdaptive,         // Theorem 2 selection (Voltage default)
  kAlwaysNaive,      // ablation: always Eq. (3)
  kAlwaysReordered,  // ablation: always Eq. (8)
};

// Exact integer form of the Theorem-2 condition
// (N - P) * F * F_H > P * N * (F - F_H).
[[nodiscard]] bool theorem2_prefers_reordered(const AttentionDims& dims);

[[nodiscard]] AttentionOrder select_order(OrderPolicy policy,
                                          const AttentionDims& dims);

[[nodiscard]] const char* to_string(AttentionOrder order) noexcept;

}  // namespace voltage
