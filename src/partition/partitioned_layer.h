// Partitioned transformer layer — paper Algorithm 1.
//
// T_p(x): the layer output restricted to positions p, computed from the
// full input x. The attention stage reads all of x; the residual link, both
// LayerNorms and the FFN are position-wise and run on the partition only.
#pragma once

#include "partition/order.h"
#include "partition/partitioned_attention.h"
#include "partition/range.h"
#include "tensor/tensor.h"
#include "transformer/layer.h"

namespace voltage {

// When `prologue` is non-null it must have been computed from x's rows
// [p.begin, p.end) with this layer's attention weights; the attention stage
// then resumes from it (the runtime uses this to overlap the prologue with
// the previous layer's all-gather). Output is bitwise identical either way.
[[nodiscard]] Tensor partitioned_layer_forward(
    const TransformerLayer& layer, const Tensor& x, Range p,
    OrderPolicy policy = OrderPolicy::kAdaptive,
    const AttentionPrologue* prologue = nullptr);

}  // namespace voltage
