#include "partition/partitioned_layer.h"

#include <stdexcept>

#include "obs/trace.h"
#include "partition/partitioned_attention.h"
#include "tensor/ops.h"
#include "transformer/ffn.h"

namespace voltage {

Tensor partitioned_layer_forward(const TransformerLayer& layer,
                                 const Tensor& x, Range p, OrderPolicy policy,
                                 const AttentionPrologue* prologue) {
  const LayerConfig& config = layer.config();
  const LayerWeights& w = layer.weights();
  if (p.end > x.rows()) {
    throw std::out_of_range("partitioned_layer_forward: range exceeds input");
  }
  if (p.empty()) return Tensor(0, config.hidden);

  obs::Tracer* const tracer = obs::thread_tracer();
  Tensor r(0, 0);
  {
    // Algorithm 1, lines 2-9: partitioned multi-head attention.
    obs::TraceSpan span(tracer, "attention", "compute", obs::thread_track());
    span.layer(obs::thread_layer());
    r = prologue != nullptr
            ? multi_head_attention_with_prologue(x, p, w.attention, config,
                                                 *prologue)
            : multi_head_attention_partition(x, p, w.attention, config,
                                             policy);
    // Line 10: residual with x_p, then LayerNorm.
    add_inplace(r, x.slice_rows(p.begin, p.end));
    r = layernorm_rows(r, w.ln_attention.gamma, w.ln_attention.beta);
  }
  // Line 11: position-wise FFN block on the partition only.
  obs::TraceSpan span(tracer, "ffn", "compute", obs::thread_track());
  span.layer(obs::thread_layer());
  Tensor f = ffn_forward(r, w.ffn, config.activation);
  add_inplace(f, r);
  return layernorm_rows(f, w.ln_ffn.gamma, w.ln_ffn.beta);
}

}  // namespace voltage
