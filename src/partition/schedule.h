// Per-layer partition schedules — the paper's §V-B observation made
// concrete: after each all-gather every device holds the full layer input,
// so each layer may use a *different* partition scheme "without any
// penalty". A LayerSchedule assigns one PartitionScheme per transformer
// layer; the uniform() factory reproduces the paper's shared-scheme default.
#pragma once

#include <vector>

#include "partition/scheme.h"

namespace voltage {

class LayerSchedule {
 public:
  // One scheme per layer; all schemes must agree on the device count.
  explicit LayerSchedule(std::vector<PartitionScheme> per_layer);

  // The paper's default: every layer shares `scheme`.
  [[nodiscard]] static LayerSchedule uniform(PartitionScheme scheme,
                                             std::size_t num_layers);

  [[nodiscard]] std::size_t num_layers() const noexcept {
    return per_layer_.size();
  }
  [[nodiscard]] std::size_t devices() const noexcept {
    return per_layer_.front().devices();
  }
  [[nodiscard]] const PartitionScheme& scheme_for(std::size_t layer) const;

  // Replace one layer's scheme (used by runtime rebalancers).
  void set_scheme(std::size_t layer, PartitionScheme scheme);

 private:
  std::vector<PartitionScheme> per_layer_;
};

}  // namespace voltage
