// Half-open position range [begin, end) within a sequence.
#pragma once

#include <cstddef>

namespace voltage {

struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin == end; }
  [[nodiscard]] bool contains(std::size_t pos) const noexcept {
    return pos >= begin && pos < end;
  }

  friend bool operator==(const Range&, const Range&) = default;
};

}  // namespace voltage
