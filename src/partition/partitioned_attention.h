// Position-partitioned multi-head self-attention (paper §III-IV).
//
// Computes the attention output for the positions in `p` only, reading the
// full input sequence x. Two numerically equivalent evaluation paths exist
// per head — Eq. (3) and Eq. (8) — with very different scaling behaviour;
// the adaptive policy (Theorem 2) chooses between them.
#pragma once

#include "partition/order.h"
#include "partition/range.h"
#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

// A_p(x) for one head: [P x F_H].
// `causal` masks attention to positions after each query's global position
// (range.begin + local row index).
[[nodiscard]] Tensor attention_head_partition(const Tensor& x, Range p,
                                              const HeadWeights& w,
                                              std::size_t head_dim, bool causal,
                                              AttentionOrder order);

// Algorithm 1, lines 2-9: per-head order selection, concat, W_O projection.
// Returns [P x F].
[[nodiscard]] Tensor multi_head_attention_partition(const Tensor& x, Range p,
                                                    const AttentionWeights& w,
                                                    const LayerConfig& config,
                                                    OrderPolicy policy);

}  // namespace voltage
