// Position-partitioned multi-head self-attention (paper §III-IV).
//
// Computes the attention output for the positions in `p` only, reading the
// full input sequence x. Two numerically equivalent evaluation paths exist
// per head — Eq. (3) and Eq. (8) — with very different scaling behaviour;
// the adaptive policy (Theorem 2) chooses between them.
#pragma once

#include <cstddef>
#include <vector>

#include "partition/order.h"
#include "partition/range.h"
#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

// A_p(x) for one head: [P x F_H].
// `causal` masks attention to positions after each query's global position
// (range.begin + local row index).
[[nodiscard]] Tensor attention_head_partition(const Tensor& x, Range p,
                                              const HeadWeights& w,
                                              std::size_t head_dim, bool causal,
                                              AttentionOrder order);

// Algorithm 1, lines 2-9: per-head order selection, concat, W_O projection.
// Returns [P x F].
[[nodiscard]] Tensor multi_head_attention_partition(const Tensor& x, Range p,
                                                    const AttentionWeights& w,
                                                    const LayerConfig& config,
                                                    OrderPolicy policy);

// The query-side head of the attention computation, split off so the runtime
// can overlap it with the layer's all-gather: both orders start from a chain
// that reads only the device's own rows — Eq. (3) needs x_p W_Q and Eq. (8)
// needs (x_p W_Q) W_K^T — so it can run while peer rows are still in flight.
// `per_head[h]` is that head's chain head: [P x F_H] (naive) or [P x F]
// (reordered). The finish path evaluates the identical FP chain the fused
// entry point would, so splitting never changes a bit of the output.
struct AttentionPrologue {
  AttentionOrder order = AttentionOrder::kNaive;
  std::vector<Tensor> per_head;
};

// Computes the prologue for the positions in `p`. `xp` holds exactly those
// rows ([P x F]); `n_total` is the full sequence length, needed because
// Theorem 2's order selection depends on N, not P.
[[nodiscard]] AttentionPrologue attention_prologue(const Tensor& xp,
                                                   std::size_t n_total, Range p,
                                                   const AttentionWeights& w,
                                                   const LayerConfig& config,
                                                   OrderPolicy policy);

// Completes multi-head attention from a prologue once the full sequence `x`
// is available. Bitwise identical to multi_head_attention_partition with the
// same inputs and the order the prologue chose.
[[nodiscard]] Tensor multi_head_attention_with_prologue(
    const Tensor& x, Range p, const AttentionWeights& w,
    const LayerConfig& config, const AttentionPrologue& prologue);

}  // namespace voltage
