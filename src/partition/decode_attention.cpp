#include "partition/decode_attention.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "tensor/ops.h"

namespace voltage {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

}  // namespace

KvBlockPool::KvBlockPool(std::size_t block_floats, std::size_t max_blocks)
    : block_floats_(block_floats), max_blocks_(max_blocks) {
  if (block_floats_ == 0) {
    throw std::invalid_argument("KvBlockPool: zero block size");
  }
}

std::size_t KvBlockPool::allocate() {
  if (!free_.empty()) {
    const std::size_t block = free_.back();
    free_.pop_back();
    ++in_use_;
    return block;
  }
  if (max_blocks_ != 0 && blocks_.size() >= max_blocks_) {
    throw std::length_error("KvBlockPool: out of blocks");
  }
  blocks_.push_back(std::make_unique<float[]>(block_floats_));
  ++in_use_;
  return blocks_.size() - 1;
}

void KvBlockPool::release(std::size_t block) {
  if (block >= blocks_.size()) {
    throw std::out_of_range("KvBlockPool: bad block id");
  }
  free_.push_back(block);
  --in_use_;
}

DecodeLayerCache::DecodeLayerCache(DecodeLayerCache&& other) noexcept {
  *this = std::move(other);
}

DecodeLayerCache& DecodeLayerCache::operator=(
    DecodeLayerCache&& other) noexcept {
  if (this == &other) return *this;
  release();
  resident_ = other.resident_;
  rows_ = other.rows_;
  heads_ = other.heads_;
  head_dim_ = other.head_dim_;
  hidden_ = other.hidden_;
  stride_ = other.stride_;
  rows_per_block_ = other.rows_per_block_;
  pool_ = other.pool_;
  owned_pool_ = std::move(other.owned_pool_);
  blocks_ = std::move(other.blocks_);
  other.pool_ = nullptr;
  other.blocks_.clear();
  other.rows_ = 0;
  return *this;
}

void DecodeLayerCache::release() noexcept {
  if (pool_ != nullptr) {
    for (const std::size_t block : blocks_) pool_->release(block);
  }
  blocks_.clear();
  rows_ = 0;
  pool_ = nullptr;
}

void DecodeLayerCache::init(AttentionOrder resident, const LayerConfig& config,
                            KvBlockPool* pool) {
  release();
  resident_ = resident;
  heads_ = config.heads;
  head_dim_ = config.head_dim;
  hidden_ = config.hidden;
  stride_ = resident_ == AttentionOrder::kNaive ? 2 * heads_ * head_dim_
                                                : hidden_;
  if (pool == nullptr) {
    if (owned_pool_ == nullptr ||
        owned_pool_->block_floats() < kv_block_floats(config)) {
      owned_pool_ = std::make_unique<KvBlockPool>(kv_block_floats(config));
    }
    pool = owned_pool_.get();
  }
  if (pool->block_floats() < stride_) {
    throw std::invalid_argument(
        "DecodeLayerCache: pool blocks narrower than one position row");
  }
  pool_ = pool;
  rows_per_block_ = pool_->block_floats() / stride_;
}

float* DecodeLayerCache::append_row() {
  if (rows_ == blocks_.size() * rows_per_block_) {
    blocks_.push_back(pool_->allocate());
  }
  float* const row = pool_->data(blocks_[rows_ / rows_per_block_]) +
                     (rows_ % rows_per_block_) * stride_;
  ++rows_;
  return row;
}

void DecodeLayerCache::append(const Tensor& block, const AttentionWeights& w) {
  if (block.rows() == 0) return;
  if (block.cols() != hidden_) {
    throw std::invalid_argument("DecodeLayerCache: block width mismatch");
  }
  if (pool_ == nullptr) {
    throw std::logic_error("DecodeLayerCache: append before init");
  }
  const std::size_t m = block.rows();
  const std::size_t fh = head_dim_;
  if (resident_ == AttentionOrder::kNaive) {
    // Project per head exactly as the monolithic path would, then scatter
    // each position's [K_0..K_{H-1} | V_0..V_{H-1}] row into its page.
    std::vector<Tensor> k_new;
    std::vector<Tensor> v_new;
    k_new.reserve(heads_);
    v_new.reserve(heads_);
    for (std::size_t h = 0; h < heads_; ++h) {
      k_new.push_back(matmul(block, w.heads[h].wk));  // m x F_H
      v_new.push_back(matmul(block, w.heads[h].wv));
    }
    for (std::size_t j = 0; j < m; ++j) {
      float* const row = append_row();
      for (std::size_t h = 0; h < heads_; ++h) {
        std::copy_n(k_new[h].row(j).data(), fh, row + h * fh);
        std::copy_n(v_new[h].row(j).data(), fh, row + (heads_ + h) * fh);
      }
    }
  } else {
    for (std::size_t j = 0; j < m; ++j) {
      std::copy_n(block.row(j).data(), hidden_, append_row());
    }
  }
}

void DecodeLayerCache::truncate(std::size_t n) {
  if (n == 0) return;
  if (n > rows_) {
    throw std::out_of_range("DecodeLayerCache: truncate past the beginning");
  }
  rows_ -= n;
  const std::size_t needed =
      (rows_ + rows_per_block_ - 1) / rows_per_block_;
  while (blocks_.size() > needed) {
    pool_->release(blocks_.back());
    blocks_.pop_back();
  }
}

Tensor decode_partial_attention(const Tensor& x_row,
                                const DecodeLayerCache& cache,
                                const AttentionWeights& w,
                                const LayerConfig& config) {
  if (x_row.rows() != 1 || x_row.cols() != config.hidden) {
    throw std::invalid_argument("decode_partial_attention: need one F-row");
  }
  const std::size_t heads = config.heads;
  const std::size_t fh = config.head_dim;
  const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(fh));
  Tensor packed = softmax_partial_identity(1, heads, fh);
  const std::size_t p = cache.rows_;
  if (p == 0) return packed;

  // Scratch reused across heads: scores over the cached positions, and the
  // reordered path's weighted-x accumulator.
  std::vector<float> scores(p);
  std::vector<float> xsum;

  for (std::size_t h = 0; h < heads; ++h) {
    float* const out = packed.row(0).data() + h * (fh + 2);
    if (cache.resident_ == AttentionOrder::kNaive) {
      // Eq. (3) from the resident K/V: scores = (x W_Q) K^T / sqrt(F_H).
      // Rows resolve through the page table; the per-position float order
      // is identical to contiguous storage, so results stay bitwise equal.
      const Tensor q = matmul(x_row, w.heads[h].wq);  // 1 x F_H
      const float* qd = q.data();
      for (std::size_t j = 0; j < p; ++j) {
        float dot = 0.0F;
        const float* kr = cache.position_row(j) + h * fh;
        for (std::size_t c = 0; c < fh; ++c) dot += qd[c] * kr[c];
        scores[j] = dot * inv_sqrt;
      }
      float m = kNegInf;
      for (std::size_t j = 0; j < p; ++j) m = std::max(m, scores[j]);
      float denom = 0.0F;
      for (std::size_t j = 0; j < p; ++j) {
        const float e = std::exp(scores[j] - m);
        denom += e;
        const float* vr = cache.position_row(j) + (heads + h) * fh;
        for (std::size_t c = 0; c < fh; ++c) out[2 + c] += e * vr[c];
      }
      out[0] = m;
      out[1] = denom;
    } else {
      // Eq. (8) from the resident raw rows: scores = ((x W_Q) W_K^T) x_c^T,
      // weighted value = (sum_j e_j x_j) W_V — W_V commutes with the merge
      // sum by linearity, so the partial stays F_H wide on the wire.
      const Tensor qk =
          matmul(matmul(x_row, w.heads[h].wq), w.heads[h].wk, Trans::kNo,
                 Trans::kYes);  // 1 x F
      const float* qd = qk.data();
      const std::size_t f = cache.hidden_;
      for (std::size_t j = 0; j < p; ++j) {
        float dot = 0.0F;
        const float* xr = cache.position_row(j);
        for (std::size_t c = 0; c < f; ++c) dot += qd[c] * xr[c];
        scores[j] = dot * inv_sqrt;
      }
      float m = kNegInf;
      for (std::size_t j = 0; j < p; ++j) m = std::max(m, scores[j]);
      float denom = 0.0F;
      xsum.assign(f, 0.0F);
      for (std::size_t j = 0; j < p; ++j) {
        const float e = std::exp(scores[j] - m);
        denom += e;
        const float* xr = cache.position_row(j);
        for (std::size_t c = 0; c < f; ++c) xsum[c] += e * xr[c];
      }
      const Tensor weighted(1, f, std::vector<float>(xsum));
      const Tensor o = matmul(weighted, w.heads[h].wv);  // 1 x F_H
      for (std::size_t c = 0; c < fh; ++c) out[2 + c] = o(0, c);
      out[0] = m;
      out[1] = denom;
    }
  }
  return packed;
}

Tensor decode_window_partial_attention(const Tensor& x_rows,
                                       const std::vector<bool>& owned,
                                       DecodeLayerCache& cache,
                                       const AttentionWeights& w,
                                       const LayerConfig& config) {
  const std::size_t window = x_rows.rows();
  if (window == 0 || x_rows.cols() != config.hidden) {
    throw std::invalid_argument(
        "decode_window_partial_attention: need [W x F] rows");
  }
  if (owned.size() != window) {
    throw std::invalid_argument(
        "decode_window_partial_attention: owned mask / window mismatch");
  }
  const DecodeWindowRef win{
      .begin = 0, .end = window, .owned = &owned, .cache = &cache};
  return decode_windows_partial_attention(
      x_rows, std::span<const DecodeWindowRef>(&win, 1), w, config);
}

Tensor decode_windows_partial_attention(const Tensor& x_rows,
                                        std::span<const DecodeWindowRef> windows,
                                        const AttentionWeights& w,
                                        const LayerConfig& config) {
  const std::size_t rows = x_rows.rows();
  if (rows == 0 || x_rows.cols() != config.hidden) {
    throw std::invalid_argument(
        "decode_windows_partial_attention: need [R x F] rows");
  }
  bool any_reordered = false;
  for (const DecodeWindowRef& win : windows) {
    if (win.begin >= win.end || win.end > rows || win.owned == nullptr ||
        win.cache == nullptr || win.owned->size() != win.end - win.begin) {
      throw std::invalid_argument(
          "decode_windows_partial_attention: malformed window");
    }
    any_reordered |= win.cache->resident() == AttentionOrder::kReordered;
  }
  const std::size_t heads = config.heads;
  const std::size_t fh = config.head_dim;
  const std::size_t f = config.hidden;
  const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(fh));
  Tensor packed = softmax_partial_identity(rows, heads, fh);

  // Hoisted query-side projections: cache-independent, so one [R x .] GEMM
  // per head covers every window row. Row slices of a GEMM are bitwise
  // equal to the per-row GEMVs they replace.
  std::vector<Tensor> q_all;   // R x F_H per head
  std::vector<Tensor> qk_all;  // R x F per head (reordered windows only)
  q_all.reserve(heads);
  if (any_reordered) qk_all.reserve(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    q_all.push_back(matmul(x_rows, w.heads[h].wq));
    if (any_reordered) {
      qk_all.push_back(
          matmul(q_all[h], w.heads[h].wk, Trans::kNo, Trans::kYes));
    }
  }
  // Reordered rows buffer their weighted-x sums so W_V applies once per
  // head at the end — linearity lets it commute with the row loop, and row
  // slices keep the chains bitwise identical to a per-row projection.
  std::vector<Tensor> xsum_all;
  std::vector<bool> reordered_row(rows, false);
  if (any_reordered) {
    xsum_all.reserve(heads);
    for (std::size_t h = 0; h < heads; ++h) xsum_all.emplace_back(rows, f);
  }

  std::vector<float> scores;
  for (const DecodeWindowRef& win : windows) {
    DecodeLayerCache& cache = *win.cache;
    const bool naive = cache.resident() == AttentionOrder::kNaive;
    for (std::size_t j = win.begin; j < win.end; ++j) {
      // Append-before-attend, in window order: this device's earlier window
      // rows are already resident when row j scores, later ones are not —
      // the causal structure of the window without an explicit mask.
      if ((*win.owned)[j - win.begin]) {
        cache.append(x_rows.slice_rows(j, j + 1), w);
      }
      const std::size_t p = cache.rows();
      if (p == 0) continue;  // the packed row stays the merge identity
      scores.resize(p);
      for (std::size_t h = 0; h < heads; ++h) {
        float* const out = packed.row(j).data() + h * (fh + 2);
        if (naive) {
          const float* qd = q_all[h].row(j).data();
          for (std::size_t r = 0; r < p; ++r) {
            float dot = 0.0F;
            const float* kr = cache.position_row(r) + h * fh;
            for (std::size_t c = 0; c < fh; ++c) dot += qd[c] * kr[c];
            scores[r] = dot * inv_sqrt;
          }
          float m = kNegInf;
          for (std::size_t r = 0; r < p; ++r) m = std::max(m, scores[r]);
          float denom = 0.0F;
          for (std::size_t r = 0; r < p; ++r) {
            const float e = std::exp(scores[r] - m);
            denom += e;
            const float* vr = cache.position_row(r) + (heads + h) * fh;
            for (std::size_t c = 0; c < fh; ++c) out[2 + c] += e * vr[c];
          }
          out[0] = m;
          out[1] = denom;
        } else {
          const float* qd = qk_all[h].row(j).data();
          for (std::size_t r = 0; r < p; ++r) {
            float dot = 0.0F;
            const float* xr = cache.position_row(r);
            for (std::size_t c = 0; c < f; ++c) dot += qd[c] * xr[c];
            scores[r] = dot * inv_sqrt;
          }
          float m = kNegInf;
          for (std::size_t r = 0; r < p; ++r) m = std::max(m, scores[r]);
          float denom = 0.0F;
          float* const xs = xsum_all[h].row(j).data();
          for (std::size_t r = 0; r < p; ++r) {
            const float e = std::exp(scores[r] - m);
            denom += e;
            const float* xr = cache.position_row(r);
            for (std::size_t c = 0; c < f; ++c) xs[c] += e * xr[c];
          }
          out[0] = m;
          out[1] = denom;
        }
      }
      if (!naive) reordered_row[j] = true;
    }
  }
  if (any_reordered) {
    for (std::size_t h = 0; h < heads; ++h) {
      const Tensor o = matmul(xsum_all[h], w.heads[h].wv);  // R x F_H
      for (std::size_t j = 0; j < rows; ++j) {
        if (!reordered_row[j]) continue;
        float* const out = packed.row(j).data() + h * (fh + 2);
        for (std::size_t c = 0; c < fh; ++c) out[2 + c] = o(j, c);
      }
    }
  }
  return packed;
}

Tensor softmax_partial_identity(std::size_t rows, std::size_t heads,
                                std::size_t head_dim) {
  Tensor packed(rows, softmax_partial_cols(heads, head_dim));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t h = 0; h < heads; ++h) {
      packed(r, h * (head_dim + 2)) = kNegInf;
    }
  }
  return packed;
}

void softmax_merge_inplace(Tensor& acc, const Tensor& incoming,
                           std::size_t heads, std::size_t head_dim) {
  if (!acc.same_shape(incoming) ||
      acc.cols() != softmax_partial_cols(heads, head_dim)) {
    throw std::invalid_argument("softmax_merge: partial shape mismatch");
  }
  const std::size_t stride = head_dim + 2;
  for (std::size_t r = 0; r < acc.rows(); ++r) {
    float* a = acc.row(r).data();
    const float* b = incoming.row(r).data();
    for (std::size_t h = 0; h < heads; ++h, a += stride, b += stride) {
      // Empty partials (denominator 0) are the merge identity; skipping them
      // also keeps exp(-inf - -inf) = NaN out of the all-empty corner.
      if (b[1] == 0.0F) continue;
      if (a[1] == 0.0F) {
        for (std::size_t c = 0; c < stride; ++c) a[c] = b[c];
        continue;
      }
      const float m = std::max(a[0], b[0]);
      const float ea = std::exp(a[0] - m);
      const float eb = std::exp(b[0] - m);
      a[0] = m;
      a[1] = a[1] * ea + b[1] * eb;
      for (std::size_t c = 2; c < stride; ++c) {
        a[c] = a[c] * ea + b[c] * eb;
      }
    }
  }
}

Tensor softmax_merge_concat(const Tensor& merged, std::size_t heads,
                            std::size_t fh) {
  if (merged.cols() != softmax_partial_cols(heads, fh)) {
    throw std::invalid_argument("softmax_merge_finalize: width mismatch");
  }
  Tensor concat(merged.rows(), heads * fh);
  for (std::size_t r = 0; r < merged.rows(); ++r) {
    const float* in = merged.row(r).data();
    float* out = concat.row(r).data();
    for (std::size_t h = 0; h < heads; ++h) {
      const float* triple = in + h * (fh + 2);
      if (triple[1] == 0.0F) {
        throw std::invalid_argument(
            "softmax_merge_finalize: empty merged partial (no device "
            "attended any position)");
      }
      const float inv_denom = 1.0F / triple[1];
      for (std::size_t c = 0; c < fh; ++c) {
        out[h * fh + c] = triple[2 + c] * inv_denom;
      }
    }
  }
  return concat;
}

Tensor softmax_merge_finalize(const Tensor& merged, const AttentionWeights& w,
                              const LayerConfig& config) {
  Tensor out =
      matmul(softmax_merge_concat(merged, config.heads, config.head_dim),
             w.wo);
  add_bias_inplace(out, w.bo);
  return out;
}

}  // namespace voltage
