// Partition-resident KV state and the O(P) partial-attention decode kernel.
//
// In the distributed decode regime (DistributedDecoder) every device
// permanently holds the attention state of *its own* positions — the caches
// are never gathered. Theorem 2's order selection decides the resident form
// per layer and device:
//   kNaive     — Eq. (3) layers cache K = x W_K and V = x W_V per head
//                (2 F floats per position);
//   kReordered — Eq. (8) layers never materialize K or V, so the cache is
//                the raw layer-input rows x (F floats per position) and the
//                per-head projections fold into the query side.
// Each decode step scores the new token's query against the resident rows
// only and reduces them to per-head online-softmax partials
// (max, denominator, weighted value) that an exact log-sum-exp merge
// (collective/softmax_merge.h) combines across devices.
#pragma once

#include <cstddef>
#include <vector>

#include "partition/order.h"
#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

// Packed wire layout of online-softmax partials: one row per query, and for
// head h the columns [h*(F_H+2), (h+1)*(F_H+2)) hold
//   [max, denominator, weighted_value_0 .. weighted_value_{F_H-1}].
// An empty partial (device owns no positions) is {-inf, 0, 0...} and is the
// identity of the merge.
[[nodiscard]] constexpr std::size_t softmax_partial_cols(
    std::size_t heads, std::size_t head_dim) noexcept {
  return heads * (head_dim + 2);
}

// Per-(device, layer) resident cache. Rows grow monotonically as the device
// is assigned new positions; storage grows amortized (vector push_back), so
// appending a token is O(F) — never an O(T) reallocation-copy per step.
class DecodeLayerCache {
 public:
  // Clears the cache and fixes the resident form for this sequence.
  void init(AttentionOrder resident, const LayerConfig& config);

  // Appends `block` ([m x F] layer-input rows, oldest first) in resident
  // form: K/V projections for kNaive, the raw rows for kReordered.
  void append(const Tensor& block, const AttentionWeights& w);

  [[nodiscard]] AttentionOrder resident() const noexcept { return resident_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  friend Tensor decode_partial_attention(const Tensor& x_row,
                                         const DecodeLayerCache& cache,
                                         const AttentionWeights& w,
                                         const LayerConfig& config);

  struct HeadKv {
    std::vector<float> k;  // rows x F_H, row-major
    std::vector<float> v;  // rows x F_H, row-major
  };

  AttentionOrder resident_ = AttentionOrder::kNaive;
  std::size_t rows_ = 0;
  std::size_t heads_ = 0;
  std::size_t head_dim_ = 0;
  std::size_t hidden_ = 0;
  std::vector<HeadKv> kv_;  // kNaive form
  std::vector<float> x_;    // kReordered form: rows x F, row-major
};

// Partial attention of the new token's query row `x_row` ([1 x F], the
// layer input) against the resident cache: packed
// [1 x softmax_partial_cols(H, F_H)] per-head (max, denom, weighted-value)
// triples over the cached positions only. All cached positions are in the
// new token's causal past (its own row, if resident here, was appended
// first), so no mask is applied. For kReordered caches W_V is applied to
// the partial weighted-x sum before returning — linearity lets it commute
// with the cross-device merge, keeping every device's partial F_H wide.
[[nodiscard]] Tensor decode_partial_attention(const Tensor& x_row,
                                              const DecodeLayerCache& cache,
                                              const AttentionWeights& w,
                                              const LayerConfig& config);

// Exact log-sum-exp merge of `incoming` into `acc` (both packed partials of
// identical shape): per head, m = max(m_a, m_b), d = d_a e^{m_a - m} +
// d_b e^{m_b - m}, o likewise. Mathematically identical to a monolithic
// softmax over the union of the two position sets; empty partials are
// absorbed without effect.
void softmax_merge_inplace(Tensor& acc, const Tensor& incoming,
                           std::size_t heads, std::size_t head_dim);

// The merge identity: [rows x softmax_partial_cols] of {-inf, 0, 0...}.
[[nodiscard]] Tensor softmax_partial_identity(std::size_t rows,
                                              std::size_t heads,
                                              std::size_t head_dim);

// Fully merged partials -> per-head attention rows [R x H*F_H]: each
// head's weighted value divided by its denominator, heads concatenated.
// Throws if any head's denominator is zero (no device attended anything).
// The projection half of softmax_merge_finalize, split out so alternative
// weight formats (the int8 stack) can apply their own W_O.
[[nodiscard]] Tensor softmax_merge_concat(const Tensor& merged,
                                          std::size_t heads,
                                          std::size_t head_dim);

// Fully merged partials -> attention output rows [R x F]:
// per head o / d, heads concatenated, projected through W_O and b_O.
[[nodiscard]] Tensor softmax_merge_finalize(const Tensor& merged,
                                            const AttentionWeights& w,
                                            const LayerConfig& config);

}  // namespace voltage
