// Partition-resident KV state and the O(P) partial-attention decode kernel.
//
// In the distributed decode regime (DistributedDecoder) every device
// permanently holds the attention state of *its own* positions — the caches
// are never gathered. Theorem 2's order selection decides the resident form
// per layer and device:
//   kNaive     — Eq. (3) layers cache K = x W_K and V = x W_V per head
//                (2 F floats per position);
//   kReordered — Eq. (8) layers never materialize K or V, so the cache is
//                the raw layer-input rows x (F floats per position) and the
//                per-head projections fold into the query side.
// Each decode step scores the new token's query against the resident rows
// only and reduces them to per-head online-softmax partials
// (max, denominator, weighted value) that an exact log-sum-exp merge
// (collective/softmax_merge.h) combines across devices.
//
// Storage is paged: every cache draws fixed-size blocks from a KvBlockPool
// (one pool per device, shared by all of that device's (layer, slot)
// caches), so concurrent sequences share one physical arena and a completed
// or evicted request returns its blocks to the free list instead of
// stranding capacity — the vLLM PagedAttention layout, applied to the
// paper's position partition.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "partition/order.h"
#include "tensor/tensor.h"
#include "transformer/config.h"
#include "transformer/weights.h"

namespace voltage {

// Packed wire layout of online-softmax partials: one row per query, and for
// head h the columns [h*(F_H+2), (h+1)*(F_H+2)) hold
//   [max, denominator, weighted_value_0 .. weighted_value_{F_H-1}].
// An empty partial (device owns no positions) is {-inf, 0, 0...} and is the
// identity of the merge.
[[nodiscard]] constexpr std::size_t softmax_partial_cols(
    std::size_t heads, std::size_t head_dim) noexcept {
  return heads * (head_dim + 2);
}

// Positions per block under the fattest resident form (kNaive, 2F floats per
// position); kReordered rows are half as wide, so they pack 2x as many
// positions into the same block.
inline constexpr std::size_t kKvBlockPositions = 16;

// Floats per pool block for caches of this layer shape: holds
// kKvBlockPositions rows of the widest resident form.
[[nodiscard]] constexpr std::size_t kv_block_floats(
    const LayerConfig& config) noexcept {
  const std::size_t naive = 2 * config.heads * config.head_dim;
  const std::size_t widest = naive > config.hidden ? naive : config.hidden;
  return kKvBlockPositions * widest;
}

// Fixed-size block arena for partition-resident KV state. allocate() hands
// out block ids backed by stable storage (blocks never move, so row pointers
// taken inside a block stay valid); release() returns a block to the free
// list for reuse by any later sequence. `max_blocks` caps the arena
// (0 = unbounded): exhaustion throws std::length_error, which on a decoder
// worker poisons the mesh like any other device failure — admission control
// (InferenceServer::Options::max_batch) is what keeps a correctly sized
// deployment away from that edge. Single-threaded by design: each decode
// worker owns one pool.
class KvBlockPool {
 public:
  explicit KvBlockPool(std::size_t block_floats, std::size_t max_blocks = 0);

  [[nodiscard]] std::size_t allocate();
  void release(std::size_t block);

  [[nodiscard]] float* data(std::size_t block) noexcept {
    return blocks_[block].get();
  }
  [[nodiscard]] const float* data(std::size_t block) const noexcept {
    return blocks_[block].get();
  }

  [[nodiscard]] std::size_t block_floats() const noexcept {
    return block_floats_;
  }
  [[nodiscard]] std::size_t max_blocks() const noexcept { return max_blocks_; }
  // Blocks currently held by caches / ever materialized (the high-water
  // footprint: freed blocks stay in the arena for reuse).
  [[nodiscard]] std::size_t blocks_in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t blocks_allocated() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return blocks_.size() * block_floats_ * sizeof(float);
  }

 private:
  std::size_t block_floats_;
  std::size_t max_blocks_;
  std::vector<std::unique_ptr<float[]>> blocks_;  // stable addresses
  std::vector<std::size_t> free_;                 // ids ready for reuse
  std::size_t in_use_ = 0;
};

// Per-(device, layer, sequence) resident cache. Rows grow monotonically as
// the device is assigned new positions; storage grows in whole pool blocks,
// so appending a token is O(F) — never an O(T) reallocation-copy per step.
class DecodeLayerCache {
 public:
  DecodeLayerCache() = default;
  ~DecodeLayerCache() { release(); }
  DecodeLayerCache(const DecodeLayerCache&) = delete;
  DecodeLayerCache& operator=(const DecodeLayerCache&) = delete;
  DecodeLayerCache(DecodeLayerCache&& other) noexcept;
  DecodeLayerCache& operator=(DecodeLayerCache&& other) noexcept;

  // Clears the cache and fixes the resident form for this sequence, drawing
  // storage from `pool` (nullptr: the cache lazily owns a private pool —
  // the single-sequence configuration every pre-batching call site uses).
  void init(AttentionOrder resident, const LayerConfig& config,
            KvBlockPool* pool = nullptr);

  // Returns every held block to the pool; the cache is empty afterwards
  // (init() again before reuse).
  void release() noexcept;

  // Appends `block` ([m x F] layer-input rows, oldest first) in resident
  // form: K/V projections for kNaive, the raw rows for kReordered.
  void append(const Tensor& block, const AttentionWeights& w);

  // Rolls back the newest `n` positions — the speculative-decode rejection
  // path: a verify window appends draft rows optimistically and truncates
  // the rejected tail. Blocks emptied by the rollback return to the pool;
  // surviving rows are untouched (a later append overwrites the stale floats
  // in the partially-filled tail block). Throws std::out_of_range when n
  // exceeds the resident row count.
  void truncate(std::size_t n);

  [[nodiscard]] AttentionOrder resident() const noexcept { return resident_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  // Logical resident bytes (rows x the resident form's per-position width);
  // the physical footprint is page-granular — blocks() * the pool's block
  // size.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return rows_ * stride_ * sizeof(float);
  }
  [[nodiscard]] std::size_t blocks() const noexcept { return blocks_.size(); }

 private:
  friend Tensor decode_partial_attention(const Tensor& x_row,
                                         const DecodeLayerCache& cache,
                                         const AttentionWeights& w,
                                         const LayerConfig& config);
  friend Tensor decode_windows_partial_attention(
      const Tensor& x_rows, std::span<const struct DecodeWindowRef> windows,
      const AttentionWeights& w, const LayerConfig& config);

  // Position row j: kNaive packs [K_0 .. K_{H-1} | V_0 .. V_{H-1}] (stride
  // 2 H F_H), kReordered the raw x row (stride F).
  [[nodiscard]] const float* position_row(std::size_t j) const noexcept {
    return pool_->data(blocks_[j / rows_per_block_]) +
           (j % rows_per_block_) * stride_;
  }
  [[nodiscard]] float* append_row();

  AttentionOrder resident_ = AttentionOrder::kNaive;
  std::size_t rows_ = 0;
  std::size_t heads_ = 0;
  std::size_t head_dim_ = 0;
  std::size_t hidden_ = 0;
  std::size_t stride_ = 0;          // floats per position row
  std::size_t rows_per_block_ = 0;  // positions per pool block
  KvBlockPool* pool_ = nullptr;
  std::unique_ptr<KvBlockPool> owned_pool_;  // when init'd without one
  std::vector<std::size_t> blocks_;          // pool block ids, append order
};

// Partial attention of the new token's query row `x_row` ([1 x F], the
// layer input) against the resident cache: packed
// [1 x softmax_partial_cols(H, F_H)] per-head (max, denom, weighted-value)
// triples over the cached positions only. All cached positions are in the
// new token's causal past (its own row, if resident here, was appended
// first), so no mask is applied. For kReordered caches W_V is applied to
// the partial weighted-x sum before returning — linearity lets it commute
// with the cross-device merge, keeping every device's partial F_H wide.
[[nodiscard]] Tensor decode_partial_attention(const Tensor& x_row,
                                              const DecodeLayerCache& cache,
                                              const AttentionWeights& w,
                                              const LayerConfig& config);

// Speculative-window variant: partial attention for all W rows of a verify
// window ([W x F], row j = the token at window position j) in one call,
// returning [W x softmax_partial_cols(H, F_H)]. Rows this device owns
// (owned[j] true) are appended to the cache *before* their own partial is
// computed; rows are processed strictly in window order, so the append
// sequencing IS the intra-window causal mask: row j scores against the
// resident past plus exactly the device's window positions < j (and itself
// when owned), never a later draft. Unioned across devices via the merge,
// row j therefore attends to positions 0..base+j — bitwise the same partial
// the sequential single-token path would have produced after committing
// rows 0..j-1. The rejected tail is undone with truncate().
[[nodiscard]] Tensor decode_window_partial_attention(
    const Tensor& x_rows, const std::vector<bool>& owned,
    DecodeLayerCache& cache, const AttentionWeights& w,
    const LayerConfig& config);

// One verify window of a multi-window batch: command rows [begin, end) of
// the step belong to this window's sequence; owned[j] marks the rows this
// device appends to `cache` (in window order, before the row attends).
struct DecodeWindowRef {
  std::size_t begin = 0;
  std::size_t end = 0;
  const std::vector<bool>* owned = nullptr;
  DecodeLayerCache* cache = nullptr;
};

// Batched form of decode_window_partial_attention over every window of a
// step at once ([R x F] command rows -> [R x softmax_partial_cols]). The
// query-side projections are cache-independent, so one [R x .] GEMM per
// head covers all windows — replacing R single-row GEMVs, the dominant
// per-row cost of batched decode — while the scoring loops run per row in
// window order exactly as the single-window form does. Row slices of a GEMM
// are bitwise equal to the per-row calls, so each packed row is identical
// to what decode_window_partial_attention would have produced.
[[nodiscard]] Tensor decode_windows_partial_attention(
    const Tensor& x_rows, std::span<const DecodeWindowRef> windows,
    const AttentionWeights& w, const LayerConfig& config);

// Exact log-sum-exp merge of `incoming` into `acc` (both packed partials of
// identical shape, any row count — row r of every operand belongs to the
// same query/request): per head, m = max(m_a, m_b), d = d_a e^{m_a - m} +
// d_b e^{m_b - m}, o likewise. Mathematically identical to a monolithic
// softmax over the union of the two position sets; empty partials are
// absorbed without effect.
void softmax_merge_inplace(Tensor& acc, const Tensor& incoming,
                           std::size_t heads, std::size_t head_dim);

// The merge identity: [rows x softmax_partial_cols] of {-inf, 0, 0...}.
[[nodiscard]] Tensor softmax_partial_identity(std::size_t rows,
                                              std::size_t heads,
                                              std::size_t head_dim);

// Fully merged partials -> per-head attention rows [R x H*F_H]: each
// head's weighted value divided by its denominator, heads concatenated.
// Throws if any head's denominator is zero (no device attended anything).
// The projection half of softmax_merge_finalize, split out so alternative
// weight formats (the int8 stack) can apply their own W_O.
[[nodiscard]] Tensor softmax_merge_concat(const Tensor& merged,
                                          std::size_t heads,
                                          std::size_t head_dim);

// Fully merged partials -> attention output rows [R x F]:
// per head o / d, heads concatenated, projected through W_O and b_O.
[[nodiscard]] Tensor softmax_merge_finalize(const Tensor& merged,
                                            const AttentionWeights& w,
                                            const LayerConfig& config);

}  // namespace voltage
