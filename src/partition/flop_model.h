// Closed-form computation-complexity model of partitioned self-attention
// (paper §IV). Costs are matrix-multiplication MAC counts, matching the
// paper's Γ(·) convention Γ(xW) = N·F·F_H; O(PN) softmax/scaling terms are
// tracked separately by the kernels and excluded here, as in the paper.
//
// These formulas are validated *exactly* (integer equality) against the
// thread-local MAC counters of the executing kernels in the test suite.
#pragma once

#include <cstddef>
#include <cstdint>

#include "transformer/config.h"

namespace voltage {

struct AttentionDims {
  std::size_t n = 0;   // full sequence length N
  std::size_t p = 0;   // partition length P (P <= N)
  std::size_t f = 0;   // model feature width F
  std::size_t fh = 0;  // per-head attention dimension F_H
};

// The five orders to evaluate Q_p K^T = x_p W_Q W_K^T x^T (paper Eqs. 10-14).
enum class QkOrder : std::uint8_t {
  kLeftToRight,      // ((x_p W_Q) W_K^T) x^T            — Eq. (10)
  kProjectBoth,      // (x_p W_Q)(W_K^T x^T)             — Eq. (11), "compute Q, K"
  kFuseWeightsLeft,  // (x_p (W_Q W_K^T)) x^T            — Eq. (12)
  kFuseWeightsRight, // x_p ((W_Q W_K^T) x^T)            — Eq. (13)
  kInnermostFirst,   // x_p (W_Q (W_K^T x^T))            — Eq. (14)
};

// The two orders to evaluate S x W_V (paper Eq. 6).
enum class SvOrder : std::uint8_t {
  kProjectV,        // S (x W_V) — pre-compute V
  kAggregateFirst,  // (S x) W_V
};

inline constexpr QkOrder kAllQkOrders[] = {
    QkOrder::kLeftToRight, QkOrder::kProjectBoth, QkOrder::kFuseWeightsLeft,
    QkOrder::kFuseWeightsRight, QkOrder::kInnermostFirst};
inline constexpr SvOrder kAllSvOrders[] = {SvOrder::kProjectV,
                                           SvOrder::kAggregateFirst};

// MACs to produce the P x N score matrix with the given order.
// Note: the paper's Eq. (14) prints the final term as P·N·F_H; the actual
// product x_p (F columns) with an F x N matrix costs P·F·N. We implement the
// correct count — the elimination argument of Theorem 2 holds either way.
[[nodiscard]] std::uint64_t qk_cost(QkOrder order, const AttentionDims& dims);

// MACs to reduce the P x N attention matrix S against x and W_V.
[[nodiscard]] std::uint64_t sv_cost(SvOrder order, const AttentionDims& dims);

// Total MACs of one attention head with the given composite order.
[[nodiscard]] std::uint64_t attention_cost(QkOrder qk, SvOrder sv,
                                           const AttentionDims& dims);

struct OrderChoice {
  QkOrder qk{};
  SvOrder sv{};
  std::uint64_t cost = 0;
};

// Brute-force argmin over all 10 composite orders — the oracle the
// Theorem-2 selector is tested against.
[[nodiscard]] OrderChoice cheapest_order_exhaustive(const AttentionDims& dims);

// Γ of the paper's two named composites.
// Eq. (3): P·F·F_H + 2·N·F·F_H + 2·P·N·F_H   (Theorem 1, MAC terms)
[[nodiscard]] std::uint64_t gamma_eq3(const AttentionDims& dims);
// Eq. (8): 3·P·F·F_H + 2·P·N·F                (Theorem 3, MAC terms)
[[nodiscard]] std::uint64_t gamma_eq8(const AttentionDims& dims);

// Γ of one full-sequence attention head on a single device (P = N, Eq. 3).
[[nodiscard]] std::uint64_t gamma_full_attention_head(std::size_t n,
                                                      std::size_t f,
                                                      std::size_t fh);

enum class AttentionOrder : std::uint8_t;

// MACs of Algorithm 1 for one transformer layer: H partitioned heads with
// the given order, the W_O projection and the position-wise FFN.
[[nodiscard]] std::uint64_t gamma_partitioned_layer(const LayerConfig& config,
                                                    std::size_t n,
                                                    std::size_t p,
                                                    AttentionOrder order);

// MACs of the full (unpartitioned) layer on one device.
[[nodiscard]] std::uint64_t gamma_full_layer(const LayerConfig& config,
                                             std::size_t n);

}  // namespace voltage
