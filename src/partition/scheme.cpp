#include "partition/scheme.h"

#include <charconv>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace voltage {

PartitionScheme::PartitionScheme(std::vector<double> ratios)
    : ratios_(std::move(ratios)) {
  if (ratios_.empty()) {
    throw std::invalid_argument("PartitionScheme: no devices");
  }
  double sum = 0.0;
  for (const double r : ratios_) {
    if (r < 0.0 || r > 1.0 || !std::isfinite(r)) {
      throw std::invalid_argument("PartitionScheme: ratio outside [0, 1]");
    }
    sum += r;
  }
  if (std::fabs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument("PartitionScheme: ratios must sum to 1");
  }
  // Normalize away the residual so cumulative_[K-1] is exactly 1 and the
  // last range always ends at n.
  cumulative_.resize(ratios_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < ratios_.size(); ++i) {
    ratios_[i] /= sum;
    acc += ratios_[i];
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;
}

PartitionScheme PartitionScheme::even(std::size_t devices) {
  if (devices == 0) throw std::invalid_argument("PartitionScheme: 0 devices");
  return PartitionScheme(
      std::vector<double>(devices, 1.0 / static_cast<double>(devices)));
}

PartitionScheme PartitionScheme::proportional(
    const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("PartitionScheme: weights must sum > 0");
  }
  std::vector<double> ratios(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument("PartitionScheme: negative weight");
    }
    ratios[i] = weights[i] / total;
  }
  return PartitionScheme(std::move(ratios));
}

PartitionScheme PartitionScheme::parse(std::string_view text) {
  std::vector<double> weights;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view token = text.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    // std::from_chars<double> is missing from some libstdc++ builds; strtod
    // on a bounded copy is portable and just as strict here.
    const std::string copy(token);
    char* end = nullptr;
    const double value = std::strtod(copy.c_str(), &end);
    if (copy.empty() || end != copy.c_str() + copy.size()) {
      throw std::invalid_argument("PartitionScheme::parse: bad weight '" +
                                  copy + "'");
    }
    weights.push_back(value);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return proportional(weights);
}

Range PartitionScheme::range_for(std::size_t device, std::size_t n) const {
  if (device >= ratios_.size()) {
    throw std::out_of_range("PartitionScheme: device index");
  }
  const double lo = device == 0 ? 0.0 : cumulative_[device - 1];
  const double hi = cumulative_[device];
  const auto round_pos = [n](double frac) {
    const auto p = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(n)));
    return p > n ? n : p;
  };
  return Range{.begin = round_pos(lo), .end = round_pos(hi)};
}

std::vector<Range> PartitionScheme::ranges(std::size_t n) const {
  std::vector<Range> out;
  out.reserve(ratios_.size());
  for (std::size_t i = 0; i < ratios_.size(); ++i) {
    out.push_back(range_for(i, n));
  }
  return out;
}

}  // namespace voltage
