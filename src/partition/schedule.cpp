#include "partition/schedule.h"

#include <stdexcept>

namespace voltage {

LayerSchedule::LayerSchedule(std::vector<PartitionScheme> per_layer)
    : per_layer_(std::move(per_layer)) {
  if (per_layer_.empty()) {
    throw std::invalid_argument("LayerSchedule: no layers");
  }
  const std::size_t k = per_layer_.front().devices();
  for (const PartitionScheme& scheme : per_layer_) {
    if (scheme.devices() != k) {
      throw std::invalid_argument(
          "LayerSchedule: all layers must use the same device count");
    }
  }
}

LayerSchedule LayerSchedule::uniform(PartitionScheme scheme,
                                     std::size_t num_layers) {
  if (num_layers == 0) {
    throw std::invalid_argument("LayerSchedule: no layers");
  }
  return LayerSchedule(
      std::vector<PartitionScheme>(num_layers, std::move(scheme)));
}

const PartitionScheme& LayerSchedule::scheme_for(std::size_t layer) const {
  if (layer >= per_layer_.size()) {
    throw std::out_of_range("LayerSchedule: layer index");
  }
  return per_layer_[layer];
}

void LayerSchedule::set_scheme(std::size_t layer, PartitionScheme scheme) {
  if (layer >= per_layer_.size()) {
    throw std::out_of_range("LayerSchedule: layer index");
  }
  if (scheme.devices() != devices()) {
    throw std::invalid_argument("LayerSchedule: device count mismatch");
  }
  per_layer_[layer] = std::move(scheme);
}

}  // namespace voltage
