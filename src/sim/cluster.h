// Simulated edge cluster: K worker devices plus a terminal device (paper
// Fig. 3), all joined by links with a common LinkModel.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "net/link.h"
#include "sim/device.h"

namespace voltage::sim {

struct Cluster {
  std::vector<DeviceSpec> workers;
  DeviceSpec terminal;
  LinkModel link;

  [[nodiscard]] std::size_t size() const noexcept { return workers.size(); }

  void validate() const {
    if (workers.empty()) throw std::invalid_argument("Cluster: no workers");
  }

  // K identical workers — the paper's homogeneous testbed.
  [[nodiscard]] static Cluster homogeneous(std::size_t k,
                                           const DeviceSpec& device,
                                           const LinkModel& link) {
    if (k == 0) throw std::invalid_argument("Cluster: k == 0");
    return Cluster{.workers = std::vector<DeviceSpec>(k, device),
                   .terminal = device,
                   .link = link};
  }
};

}  // namespace voltage::sim
