#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/engine.h"

namespace voltage::sim {

namespace {

constexpr std::size_t kNoClient = std::numeric_limits<std::size_t>::max();

struct Pending {
  Request req;
  std::size_t client = kNoClient;
};

struct Active {
  // Tokens still owed. Fractional: a speculative mesh commits
  // MeshModel::tokens_per_step() (an expectation, rarely integral) per
  // step, so completion times interpolate between step boundaries.
  double remaining = 0.0;
  Seconds arrival = 0.0;
  std::size_t client = kNoClient;
  bool first_token_pending = true;
};

class FleetSim {
 public:
  explicit FleetSim(const FleetConfig& cfg) : cfg_(cfg), meshes_(cfg.num_meshes) {
    if (cfg_.num_meshes == 0 || cfg_.max_batch == 0) {
      throw std::invalid_argument("FleetConfig: need meshes > 0, batch > 0");
    }
  }

  FleetReport run_open(const std::vector<Request>& requests) {
    if (requests.empty()) {
      throw std::invalid_argument("simulate_fleet: no requests");
    }
    Seconds last_arrival = 0.0;
    for (const Request& r : requests) {
      if (r.arrival < last_arrival) {
        throw std::invalid_argument(
            "simulate_fleet: arrivals must be time-sorted");
      }
      last_arrival = r.arrival;
      engine_.schedule(r.arrival, [this, r] { offer(r, kNoClient); });
    }
    engine_.run();
    return report(last_arrival > 0.0 ? last_arrival : engine_.now());
  }

  FleetReport run_closed(const ClosedLoopClients& clients) {
    if (clients.num_clients == 0 || clients.requests_per_client == 0 ||
        clients.mean_think <= 0.0) {
      throw std::invalid_argument(
          "ClosedLoopClients: need clients > 0, requests > 0, think > 0");
    }
    clients_ = &clients;
    rng_ = Rng(clients.seed);
    issued_.assign(clients.num_clients, 0);
    // Staggered starts: each client begins after one think time, so the
    // fleet does not see a synchronized thundering herd at t = 0.
    for (std::size_t c = 0; c < clients.num_clients; ++c) {
      engine_.schedule(sample_exponential(rng_, 1.0 / clients.mean_think),
                       [this, c] { issue(c); });
    }
    engine_.run();
    return report(engine_.now());
  }

 private:
  struct Mesh {
    std::deque<Pending> queue;
    std::vector<Active> active;
    bool stepping = false;
    Seconds busy = 0.0;
  };

  void issue(std::size_t client) {
    ++issued_[client];
    const Request r{.arrival = engine_.now(),
                    .prompt_tokens = clients_->prompt.sample(rng_),
                    .output_tokens = clients_->output.sample(rng_)};
    offer(r, client);
  }

  void client_turnaround(std::size_t client) {
    if (issued_[client] >= clients_->requests_per_client) return;
    engine_.schedule_after(
        sample_exponential(rng_, 1.0 / clients_->mean_think),
        [this, client] { issue(client); });
  }

  void offer(const Request& r, std::size_t client) {
    if (r.output_tokens == 0) {
      throw std::invalid_argument("simulate_fleet: request wants 0 tokens");
    }
    ++offered_;
    output_token_sum_ += static_cast<double>(r.output_tokens);
    demand_seconds_ += cfg_.mesh.prefill_time(r.prompt_tokens) +
                       static_cast<double>(r.output_tokens) /
                           cfg_.mesh.saturated_tokens_per_s();
    bool reject = false;
    const std::size_t m = pick_mesh(r, reject);
    if (reject || meshes_[m].queue.size() >= cfg_.max_queue_per_mesh) {
      ++rejected_;
      // A shed closed-loop client thinks and asks again later.
      if (client != kNoClient) client_turnaround(client);
      return;
    }
    meshes_[m].queue.push_back(Pending{.req = r, .client = client});
    maybe_start_step(m);
  }

  [[nodiscard]] std::size_t pick_mesh(const Request& r, bool& reject) {
    switch (cfg_.policy) {
      case BalancerPolicy::kRoundRobin:
        return rr_next_++ % meshes_.size();
      case BalancerPolicy::kJoinShortestQueue: {
        std::size_t best = 0;
        std::size_t best_depth = std::numeric_limits<std::size_t>::max();
        for (std::size_t m = 0; m < meshes_.size(); ++m) {
          const std::size_t depth =
              meshes_[m].queue.size() + meshes_[m].active.size();
          if (depth < best_depth) {
            best = m;
            best_depth = depth;
          }
        }
        return best;
      }
      case BalancerPolicy::kDeadlineAware: {
        std::size_t best = 0;
        Seconds best_ttft = std::numeric_limits<double>::infinity();
        for (std::size_t m = 0; m < meshes_.size(); ++m) {
          const Seconds t = predicted_ttft(meshes_[m], r);
          if (t < best_ttft) {
            best = m;
            best_ttft = t;
          }
        }
        // Shed rather than queue a request that is already predicted to
        // blow the SLO — bounded tail beats completed volume.
        reject = best_ttft > cfg_.ttft_slo;
        return best;
      }
    }
    return 0;  // unreachable
  }

  // Estimated TTFT at admission time: slots open at roughly
  // max_batch / mean_output tokens per step when the mesh is saturated, so
  // a queue of q requests waits ~ q * mean_output * step / max_batch before
  // its prefill even starts. A coarse estimate — it is a balancer, not an
  // oracle — but it is deterministic and monotone in backlog.
  [[nodiscard]] Seconds predicted_ttft(const Mesh& mesh,
                                       const Request& r) const {
    const double mean_output =
        offered_ == 0 ? static_cast<double>(r.output_tokens)
                      : output_token_sum_ / static_cast<double>(offered_);
    const double bmax = cfg_.mesh.max_calibrated_batch();
    const Seconds step = cfg_.mesh.step_time(bmax);
    const bool has_free_slot =
        mesh.queue.empty() && mesh.active.size() < cfg_.max_batch;
    const Seconds queue_wait =
        has_free_slot ? 0.0
                      : static_cast<double>(mesh.queue.size() + 1) *
                            mean_output * step /
                            (bmax * cfg_.mesh.tokens_per_step());
    return queue_wait + cfg_.mesh.prefill_time(r.prompt_tokens) + step;
  }

  void maybe_start_step(std::size_t m) {
    Mesh& mesh = meshes_[m];
    if (mesh.stepping) return;
    // Iteration-level join: waiting requests enter at the step boundary,
    // paying their prefill as part of the step they join.
    Seconds prefill = 0.0;
    while (mesh.active.size() < cfg_.max_batch && !mesh.queue.empty()) {
      Pending p = std::move(mesh.queue.front());
      mesh.queue.pop_front();
      prefill += cfg_.mesh.prefill_time(p.req.prompt_tokens);
      queue_wait_.record(engine_.now() - p.req.arrival);
      mesh.active.push_back(
          Active{.remaining = static_cast<double>(p.req.output_tokens),
                 .arrival = p.req.arrival,
                 .client = p.client});
    }
    if (mesh.active.empty()) return;
    const Seconds dt =
        cfg_.mesh.step_time(static_cast<double>(mesh.active.size())) + prefill;
    mesh.stepping = true;
    mesh.busy += dt;
    engine_.schedule_after(dt, [this, m] { finish_step(m); });
  }

  void finish_step(std::size_t m) {
    Mesh& mesh = meshes_[m];
    const Seconds now = engine_.now();
    std::vector<Active> still_running;
    still_running.reserve(mesh.active.size());
    // Each step commits tokens_per_step() tokens per lane (1.0 without
    // speculation; the expected acceptance run length with it).
    const double commit = cfg_.mesh.tokens_per_step();
    for (Active& a : mesh.active) {
      if (a.first_token_pending) {
        a.first_token_pending = false;
        const Seconds ttft = now - a.arrival;
        ttft_.record(ttft);
        if (ttft <= cfg_.ttft_slo) ++within_slo_;
      }
      tokens_generated_ += std::min(commit, a.remaining);
      a.remaining -= commit;
      if (a.remaining <= 0.0) {
        ++completed_;
        e2e_.record(now - a.arrival);
        if (a.client != kNoClient) client_turnaround(a.client);
      } else {
        still_running.push_back(a);
      }
    }
    mesh.active = std::move(still_running);
    mesh.stepping = false;
    maybe_start_step(m);
  }

  [[nodiscard]] FleetReport report(Seconds offered_horizon) const {
    FleetReport rep;
    rep.num_meshes = meshes_.size();
    rep.offered = offered_;
    rep.completed = completed_;
    rep.rejected = rejected_;
    rep.makespan = engine_.now();
    if (offered_horizon > 0.0) {
      rep.offered_rps = static_cast<double>(offered_) / offered_horizon;
      rep.offered_load =
          demand_seconds_ /
          (offered_horizon * static_cast<double>(meshes_.size()));
    }
    if (rep.makespan > 0.0) {
      rep.achieved_rps = static_cast<double>(completed_) / rep.makespan;
      rep.tokens_per_s = tokens_generated_ / rep.makespan;
      double busy = 0.0;
      for (const Mesh& mesh : meshes_) busy += mesh.busy;
      rep.mean_mesh_utilization =
          busy / (rep.makespan * static_cast<double>(meshes_.size()));
    }
    rep.stable = rep.offered_load < 1.0;
    rep.slo_attainment =
        completed_ == 0 ? 0.0
                        : static_cast<double>(within_slo_) /
                              static_cast<double>(completed_);
    rep.ttft = ttft_.snapshot();
    rep.e2e = e2e_.snapshot();
    rep.queue_wait = queue_wait_.snapshot();
    return rep;
  }

  FleetConfig cfg_;
  Engine engine_;
  std::vector<Mesh> meshes_;
  std::size_t rr_next_ = 0;

  std::size_t offered_ = 0;
  std::size_t completed_ = 0;
  std::size_t rejected_ = 0;
  std::size_t within_slo_ = 0;
  double tokens_generated_ = 0.0;
  double output_token_sum_ = 0.0;
  double demand_seconds_ = 0.0;

  obs::Histogram ttft_;
  obs::Histogram e2e_;
  obs::Histogram queue_wait_;

  // Closed-loop state.
  const ClosedLoopClients* clients_ = nullptr;
  Rng rng_{0};
  std::vector<std::size_t> issued_;
};

}  // namespace

FleetReport simulate_fleet(const FleetConfig& config,
                           const std::vector<Request>& requests) {
  FleetSim sim(config);
  return sim.run_open(requests);
}

FleetReport simulate_fleet(const FleetConfig& config,
                           const OpenLoopTraffic& traffic) {
  return simulate_fleet(config, traffic.generate());
}

FleetReport simulate_fleet_closed_loop(const FleetConfig& config,
                                       const ClosedLoopClients& clients) {
  FleetSim sim(config);
  return sim.run_closed(clients);
}

}  // namespace voltage::sim
