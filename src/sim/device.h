// Simulated edge-device compute model.
//
// Calibrated against the paper's testbed (one vCPU per VM): compute time of
// a kernel is  MACs / mac_rate  +  elementwise_ops / elementwise_rate.
// Splitting the memory-bound position-wise work (softmax, LayerNorm,
// residuals, activations) from the GEMMs matters because the former does
// not shrink when you add devices as fast as Γ suggests on real CPUs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/link.h"

namespace voltage::sim {

struct DeviceSpec {
  std::string name = "edge-device";
  double mac_rate = 25e9;          // multiply-accumulates per second
  double elementwise_rate = 4e9;   // elementwise float ops per second

  [[nodiscard]] Seconds compute_time(std::uint64_t macs,
                                     std::uint64_t elementwise = 0) const {
    if (mac_rate <= 0.0 || elementwise_rate <= 0.0) {
      throw std::invalid_argument("DeviceSpec: non-positive rate");
    }
    return static_cast<double>(macs) / mac_rate +
           static_cast<double>(elementwise) / elementwise_rate;
  }
};

}  // namespace voltage::sim
