// Continuous-batching mesh service model, calibrated from measured numbers.
//
// One "mesh" is a K-device Voltage deployment running the PR-8 batched
// decoder: every decode step generates one token for each of the B active
// sequences, and the step's wall time grows sublinearly in B (compute
// amortizes the per-step collective round-trips). Rather than re-deriving
// that curve from first principles, the model interpolates the committed
// measurements:
//
//   - BENCH_serving.json (fp32, K=4): per-step wall time at B ∈ {1, 4, 16}
//     plus the per-step wire profile (messages constant in B, bytes
//     sublinear) — the occupancy curve;
//   - BENCH_decode.json (K=4, context 256): the full-forward rate that
//     prices prefill (a 256-token recompute step = one batched prefill
//     pass over 256 positions).
//
// with_link() re-prices the wire share of each calibration point from the
// benchmark's loopback-socket link onto an arbitrary LinkModel through the
// latency_model hook (decode_step_wire_time), so the same compute curve
// answers questions about 500 Mbps edge links.
#pragma once

#include <cstddef>
#include <vector>

#include "net/link.h"

namespace voltage::sim {

// One calibration point of the occupancy curve.
struct StepPoint {
  double batch = 1.0;             // concurrent sequences in the step
  Seconds step_time = 0.0;        // measured wall time of one decode step
  double bytes_per_step = 0.0;    // wire bytes the step moves
  double messages_per_step = 0.0; // wire messages the step sends
};

class MeshModel {
 public:
  // `curve` must be non-empty, sorted by strictly increasing batch, with
  // positive step times. `calibration_link` is the link the curve was
  // measured over (loopback for the committed benchmarks).
  MeshModel(std::size_t devices, std::vector<StepPoint> curve,
            double prefill_tokens_per_s, Seconds prefill_overhead,
            const LinkModel& calibration_link);

  // The committed BENCH_serving.json fp32 K=4 occupancy curve plus the
  // BENCH_decode.json prefill rate.
  [[nodiscard]] static MeshModel from_bench_serving();

  // Same compute behaviour over a different link: for every calibration
  // point the calibration link's wire time is subtracted and the new
  // link's added (never below the compute floor).
  [[nodiscard]] MeshModel with_link(const LinkModel& link) const;

  // Models the PR-10 speculative decoder: every step verifies a window of
  // 1 + draft_tokens rows per lane in the same collective round and commits
  // expected_tokens_per_step(draft_tokens, accept_rate) tokens per lane.
  // On the wire and in compute a W-row window is indistinguishable from W
  // single-row lanes (identical protocol shape), so step_time(b) prices a
  // speculative step at the calibrated curve's b * W point — compute
  // amortization, linear bytes and constant messages all fall out of the
  // measurements. `accept_rate` is the per-draft acceptance probability in
  // [0, 1]; draft_tokens == 0 is a no-op.
  [[nodiscard]] MeshModel with_speculation(std::size_t draft_tokens,
                                           double accept_rate) const;

  // Expected committed tokens of one verify round with a k-draft window at
  // per-draft acceptance p: 1 + p + p^2 + ... + p^k = (1 - p^(k+1))/(1 - p)
  // (k + 1 at p == 1) — acceptance stops at the first rejected draft.
  [[nodiscard]] static double expected_tokens_per_step(std::size_t draft_tokens,
                                                       double accept_rate);

  // Piecewise-linear in batch over the calibration points (batch counts
  // lanes; a speculative model prices its window rows internally);
  // extrapolates the last segment's slope beyond the largest measured batch.
  [[nodiscard]] Seconds step_time(double batch) const;

  // Tokens one decode step commits per lane: 1.0 for a plain model, the
  // expected acceptance run length for a with_speculation model.
  [[nodiscard]] double tokens_per_step() const noexcept {
    return spec_tokens_;
  }

  // Time a joining request's prompt occupies the mesh before its sequence
  // can take part in decode steps.
  [[nodiscard]] Seconds prefill_time(std::size_t prompt_tokens) const;

  // Decode throughput when every step runs at the largest calibrated
  // batch — the capacity the planner's stability bound uses.
  [[nodiscard]] double saturated_tokens_per_s() const;

  [[nodiscard]] double max_calibrated_batch() const;
  [[nodiscard]] std::size_t devices() const noexcept { return devices_; }
  [[nodiscard]] const std::vector<StepPoint>& curve() const noexcept {
    return curve_;
  }

 private:
  std::size_t devices_ = 1;
  std::vector<StepPoint> curve_;
  double prefill_tokens_per_s_ = 1.0;
  Seconds prefill_overhead_ = 0.0;
  LinkModel calibration_link_;
  // Speculation shape (identity for a plain model): rows each lane carries
  // per step and the expected tokens those rows commit.
  double spec_rows_ = 1.0;
  double spec_tokens_ = 1.0;
};

}  // namespace voltage::sim
