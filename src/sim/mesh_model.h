// Continuous-batching mesh service model, calibrated from measured numbers.
//
// One "mesh" is a K-device Voltage deployment running the PR-8 batched
// decoder: every decode step generates one token for each of the B active
// sequences, and the step's wall time grows sublinearly in B (compute
// amortizes the per-step collective round-trips). Rather than re-deriving
// that curve from first principles, the model interpolates the committed
// measurements:
//
//   - BENCH_serving.json (fp32, K=4): per-step wall time at B ∈ {1, 4, 16}
//     plus the per-step wire profile (messages constant in B, bytes
//     sublinear) — the occupancy curve;
//   - BENCH_decode.json (K=4, context 256): the full-forward rate that
//     prices prefill (a 256-token recompute step = one batched prefill
//     pass over 256 positions).
//
// with_link() re-prices the wire share of each calibration point from the
// benchmark's loopback-socket link onto an arbitrary LinkModel through the
// latency_model hook (decode_step_wire_time), so the same compute curve
// answers questions about 500 Mbps edge links.
#pragma once

#include <cstddef>
#include <vector>

#include "net/link.h"

namespace voltage::sim {

// One calibration point of the occupancy curve.
struct StepPoint {
  double batch = 1.0;             // concurrent sequences in the step
  Seconds step_time = 0.0;        // measured wall time of one decode step
  double bytes_per_step = 0.0;    // wire bytes the step moves
  double messages_per_step = 0.0; // wire messages the step sends
};

class MeshModel {
 public:
  // `curve` must be non-empty, sorted by strictly increasing batch, with
  // positive step times. `calibration_link` is the link the curve was
  // measured over (loopback for the committed benchmarks).
  MeshModel(std::size_t devices, std::vector<StepPoint> curve,
            double prefill_tokens_per_s, Seconds prefill_overhead,
            const LinkModel& calibration_link);

  // The committed BENCH_serving.json fp32 K=4 occupancy curve plus the
  // BENCH_decode.json prefill rate.
  [[nodiscard]] static MeshModel from_bench_serving();

  // Same compute behaviour over a different link: for every calibration
  // point the calibration link's wire time is subtracted and the new
  // link's added (never below the compute floor).
  [[nodiscard]] MeshModel with_link(const LinkModel& link) const;

  // Piecewise-linear in batch over the calibration points; extrapolates
  // the last segment's slope beyond the largest measured batch.
  [[nodiscard]] Seconds step_time(double batch) const;

  // Time a joining request's prompt occupies the mesh before its sequence
  // can take part in decode steps.
  [[nodiscard]] Seconds prefill_time(std::size_t prompt_tokens) const;

  // Decode throughput when every step runs at the largest calibrated
  // batch — the capacity the planner's stability bound uses.
  [[nodiscard]] double saturated_tokens_per_s() const;

  [[nodiscard]] double max_calibrated_batch() const;
  [[nodiscard]] std::size_t devices() const noexcept { return devices_; }
  [[nodiscard]] const std::vector<StepPoint>& curve() const noexcept {
    return curve_;
  }

 private:
  std::size_t devices_ = 1;
  std::vector<StepPoint> curve_;
  double prefill_tokens_per_s_ = 1.0;
  Seconds prefill_overhead_ = 0.0;
  LinkModel calibration_link_;
};

}  // namespace voltage::sim
