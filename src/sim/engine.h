// Minimal discrete-event simulation engine: a virtual clock and an ordered
// event queue. Events scheduled for the same instant fire in scheduling
// order, so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace voltage::sim {

using SimTime = double;  // virtual seconds

class Engine {
 public:
  // Schedules `fn` at absolute virtual time `t`; throws if t is in the past.
  void schedule(SimTime t, std::function<void()> fn);
  void schedule_after(SimTime dt, std::function<void()> fn) {
    schedule(now_ + dt, std::move(fn));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  // Fires the next event; returns false when the queue is empty.
  bool step();
  // Runs until no events remain.
  void run();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among simultaneous events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace voltage::sim
