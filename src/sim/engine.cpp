#include "sim/engine.h"

#include <stdexcept>
#include <utility>

namespace voltage::sim {

void Engine::schedule(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("Engine::schedule: time in the past");
  }
  queue_.push(Event{.time = t, .seq = next_seq_++, .fn = std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function must be moved out
  // before pop, hence the const_cast-free copy of the small struct parts.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace voltage::sim
