// Traffic generation for the fleet-scale serving simulator.
//
// Production request streams are nothing like the single-rate Poisson +
// scalar-service model the first simulator used: arrival rates swing
// diurnally, and prompt/output token lengths are heavy-tailed (a few huge
// prompts dominate mesh occupancy). This module generates both open-loop
// streams (rate is an external fact, queue grows if the fleet cannot keep
// up — the million-user regime) and closed-loop client pools (each user
// waits for the answer, thinks, asks again — the benchmark-harness regime).
//
// All inverse-CDF sampling goes through Rng::next_uniform_double(), which
// is open at 0, so -log(u) and u^(-1/alpha) never see a clamped phantom
// extreme (see the Rng header).
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.h"
#include "tensor/rng.h"

namespace voltage::sim {

// One serving request: arrives at `arrival`, carries a prompt to prefill
// and wants `output_tokens` generated one decode step at a time.
struct Request {
  Seconds arrival = 0.0;
  std::size_t prompt_tokens = 1;
  std::size_t output_tokens = 1;
};

// Exponential inter-arrival / think-time draw via inverse CDF.
[[nodiscard]] Seconds sample_exponential(Rng& rng, double rate);

// Token-length distribution: fixed, lognormal (body of the length mix) or
// Pareto (the heavy tail). Samples clamp into [min_tokens, max_tokens]
// (context windows are finite).
class LengthDistribution {
 public:
  [[nodiscard]] static LengthDistribution fixed(std::size_t tokens);
  // exp(N(log(median), sigma^2)), i.e. `median_tokens` is the p50.
  [[nodiscard]] static LengthDistribution lognormal(double median_tokens,
                                                    double sigma,
                                                    std::size_t min_tokens,
                                                    std::size_t max_tokens);
  // scale * U^(-1/alpha): alpha <= 1 has infinite mean, only the clamp
  // keeps it finite — allowed, but know what you are asking for.
  [[nodiscard]] static LengthDistribution pareto(double scale_tokens,
                                                 double alpha,
                                                 std::size_t min_tokens,
                                                 std::size_t max_tokens);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  // Monte-Carlo mean of the clamped distribution (the clamp makes closed
  // forms wrong exactly in the tail that matters). Deterministic in `seed`.
  [[nodiscard]] double empirical_mean(std::uint64_t seed,
                                      std::size_t draws = 100000) const;

 private:
  enum class Kind : std::uint8_t { kFixed, kLognormal, kPareto };
  Kind kind_ = Kind::kFixed;
  double a_ = 1.0;  // fixed: tokens; lognormal: log(median); pareto: scale
  double b_ = 0.0;  // lognormal: sigma; pareto: alpha
  std::size_t min_tokens_ = 1;
  std::size_t max_tokens_ = 1;
};

// Sinusoidal rate modulation: rate(t) = base * (1 + amplitude * sin(...)).
// amplitude in [0, 1); amplitude 0 is a homogeneous Poisson process.
struct DiurnalShape {
  double amplitude = 0.0;
  Seconds period = 86400.0;
  double phase = 0.0;  // radians; 0 starts at the mean rate, rising

  [[nodiscard]] double modulation(Seconds t) const;
};

// Open-loop arrivals: a non-homogeneous Poisson process (Lewis-Shedler
// thinning against the peak rate) with per-request lengths drawn i.i.d.
struct OpenLoopTraffic {
  double base_rate_rps = 1.0;
  DiurnalShape diurnal;
  LengthDistribution prompt = LengthDistribution::fixed(16);
  LengthDistribution output = LengthDistribution::fixed(64);
  std::size_t num_requests = 10000;
  std::uint64_t seed = 1;

  [[nodiscard]] std::vector<Request> generate() const;
};

// Closed-loop client pool: each client issues a request, waits for the
// full response, thinks for Exp(1/mean_think), repeats. The interesting
// dynamics (think-time gating, self-throttling under overload) live in the
// fleet simulator, which owns the issue/complete loop; this struct is the
// population description.
struct ClosedLoopClients {
  std::size_t num_clients = 64;
  Seconds mean_think = 1.0;
  LengthDistribution prompt = LengthDistribution::fixed(16);
  LengthDistribution output = LengthDistribution::fixed(64);
  std::size_t requests_per_client = 16;
  std::uint64_t seed = 1;
};

}  // namespace voltage::sim
