// Request-serving simulation: sporadic arrivals against each deployment.
//
// The paper motivates Voltage with the edge serving regime — requests
// arrive sporadically, batch size 1, latency-bound — and argues pipeline
// parallelism only helps throughput (§V-C). This module closes the loop
// quantitatively: Poisson arrivals into a deployment and the resulting
// sojourn-time distribution (queueing + service).
//
// Two server models cover the strategies:
//   - Monolithic: the whole cluster serves one request at a time (single
//     device, Voltage, tensor parallelism) — an M/D/1 queue with the
//     strategy's end-to-end latency as service time.
//   - Pipelined: a new request may enter every `bottleneck` seconds while
//     each request still takes `request_latency` to traverse all stages.
//
// For fleets of batched meshes, balancers and traffic shapes, see
// sim/fleet.h — this is the single-queue building block.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.h"

namespace voltage::sim {

struct ArrivalProcess {
  double rate_rps = 1.0;         // mean arrival rate (Poisson)
  std::size_t num_requests = 2000;
  std::uint64_t seed = 1;
};

struct ServingReport {
  Seconds mean = 0.0;
  Seconds p50 = 0.0;
  Seconds p95 = 0.0;
  Seconds p99 = 0.0;
  Seconds max = 0.0;
  // Achieved busy fraction of the simulated horizon — always <= 1, unlike
  // the offered load below, which is what the old `utilization` reported.
  double utilization = 0.0;
  double offered_load = 0.0;     // rho = lambda * service (can exceed 1)
  double throughput_rps = 0.0;   // completed / makespan
  // rho < 1. When false the queue is divergent: sojourn percentiles grow
  // without bound in num_requests and must not be read as steady state.
  bool stable = false;
};

// Percentile summary of raw latency samples through the repo-wide
// nearest-rank convention (obs/percentile.h) — bit-identical to
// obs::Histogram::snapshot on the same data. Only the latency fields of
// the report are populated.
[[nodiscard]] ServingReport summarize_samples(std::vector<Seconds> samples);

// Monolithic server: service one request at a time in `service_time`.
[[nodiscard]] ServingReport simulate_serving(Seconds service_time,
                                             const ArrivalProcess& arrivals);

// Pipelined server: admission every `bottleneck` seconds, each request
// spends `request_latency` in flight.
[[nodiscard]] ServingReport simulate_pipeline_serving(
    Seconds request_latency, Seconds bottleneck,
    const ArrivalProcess& arrivals);

}  // namespace voltage::sim
