#include "sim/mesh_model.h"

#include <algorithm>
#include <stdexcept>

#include "parallel/latency_model.h"

namespace voltage::sim {

namespace {

// The committed benchmarks ran over SocketFabric on loopback: negligible
// serialization time, a small per-message syscall/framing cost.
constexpr LinkModel kLoopbackLink{.bandwidth_bps = 10e9,
                                  .per_message_latency = 20e-6};

}  // namespace

MeshModel::MeshModel(std::size_t devices, std::vector<StepPoint> curve,
                     double prefill_tokens_per_s, Seconds prefill_overhead,
                     const LinkModel& calibration_link)
    : devices_(devices),
      curve_(std::move(curve)),
      prefill_tokens_per_s_(prefill_tokens_per_s),
      prefill_overhead_(prefill_overhead),
      calibration_link_(calibration_link) {
  if (devices_ == 0 || curve_.empty() || prefill_tokens_per_s_ <= 0.0 ||
      prefill_overhead_ < 0.0) {
    throw std::invalid_argument("MeshModel: bad calibration");
  }
  for (std::size_t i = 0; i < curve_.size(); ++i) {
    if (curve_[i].batch < 1.0 || curve_[i].step_time <= 0.0 ||
        curve_[i].bytes_per_step < 0.0 || curve_[i].messages_per_step < 0.0) {
      throw std::invalid_argument("MeshModel: bad curve point");
    }
    if (i > 0 && curve_[i].batch <= curve_[i - 1].batch) {
      throw std::invalid_argument(
          "MeshModel: curve must be sorted by increasing batch");
    }
  }
}

MeshModel MeshModel::from_bench_serving() {
  // BENCH_serving.json, fp32, K=4, mini-gpt2-serving: step time is
  // batch / tokens_per_s at the measured B ∈ {1, 4, 16}.
  std::vector<StepPoint> curve{
      {.batch = 1.0,
       .step_time = 1.0 / 417.955,
       .bytes_per_step = 17320.0,
       .messages_per_step = 29.0},
      {.batch = 4.0,
       .step_time = 4.0 / 792.072,
       .bytes_per_step = 64408.0,
       .messages_per_step = 29.0},
      {.batch = 16.0,
       .step_time = 16.0 / 957.099,
       .bytes_per_step = 252760.0,
       .messages_per_step = 29.0},
  };
  // BENCH_decode.json, K=4, context 256: the recompute path produces one
  // token per full 256-position forward at 22.4572 tokens/s, so a batched
  // prefill pass runs at 256 * 22.4572 ≈ 5749 prompt tokens/s.
  return MeshModel(4, std::move(curve), 256.0 * 22.4572, 0.0, kLoopbackLink);
}

MeshModel MeshModel::with_link(const LinkModel& link) const {
  std::vector<StepPoint> repriced = curve_;
  for (StepPoint& p : repriced) {
    const Seconds wire_cal = decode_step_wire_time(
        p.messages_per_step, p.bytes_per_step, calibration_link_);
    const Seconds wire_new =
        decode_step_wire_time(p.messages_per_step, p.bytes_per_step, link);
    // Compute share of the measured step, floored at 5% in case the stated
    // calibration link overprices the measured wire.
    const Seconds compute =
        std::max(p.step_time - wire_cal, 0.05 * p.step_time);
    p.step_time = compute + wire_new;
  }
  MeshModel result(devices_, std::move(repriced), prefill_tokens_per_s_,
                   prefill_overhead_, link);
  result.spec_rows_ = spec_rows_;
  result.spec_tokens_ = spec_tokens_;
  return result;
}

double MeshModel::expected_tokens_per_step(std::size_t draft_tokens,
                                           double accept_rate) {
  if (accept_rate < 0.0 || accept_rate > 1.0) {
    throw std::invalid_argument(
        "MeshModel: acceptance rate must be in [0, 1]");
  }
  double expected = 1.0;
  double run = 1.0;
  for (std::size_t i = 0; i < draft_tokens; ++i) {
    run *= accept_rate;
    expected += run;
  }
  return expected;
}

MeshModel MeshModel::with_speculation(std::size_t draft_tokens,
                                      double accept_rate) const {
  MeshModel result = *this;
  result.spec_rows_ =
      spec_rows_ * static_cast<double>(1 + draft_tokens);
  result.spec_tokens_ =
      spec_tokens_ * expected_tokens_per_step(draft_tokens, accept_rate);
  return result;
}

Seconds MeshModel::step_time(double batch) const {
  if (batch <= 0.0) {
    throw std::invalid_argument("MeshModel::step_time: batch <= 0");
  }
  // Lanes -> rows: a speculative step carrying W rows per lane prices like
  // a W-times-larger single-row batch (same protocol shape on the wire).
  batch *= spec_rows_;
  if (batch <= curve_.front().batch) return curve_.front().step_time;
  for (std::size_t i = 1; i < curve_.size(); ++i) {
    if (batch <= curve_[i].batch) {
      const StepPoint& lo = curve_[i - 1];
      const StepPoint& hi = curve_[i];
      const double w = (batch - lo.batch) / (hi.batch - lo.batch);
      return lo.step_time + w * (hi.step_time - lo.step_time);
    }
  }
  // Beyond the largest measured batch: continue the last segment's slope
  // (the curve is already in its near-linear regime there).
  const StepPoint& lo =
      curve_.size() > 1 ? curve_[curve_.size() - 2] : curve_.back();
  const StepPoint& hi = curve_.back();
  const double slope = curve_.size() > 1
                           ? (hi.step_time - lo.step_time) /
                                 (hi.batch - lo.batch)
                           : hi.step_time / hi.batch;
  return hi.step_time + (batch - hi.batch) * slope;
}

Seconds MeshModel::prefill_time(std::size_t prompt_tokens) const {
  return prefill_overhead_ +
         static_cast<double>(prompt_tokens) / prefill_tokens_per_s_;
}

double MeshModel::saturated_tokens_per_s() const {
  // At saturation the mesh moves rows at the top calibration point's rate;
  // every spec_rows_ rows commit spec_tokens_ tokens (both 1.0 when no
  // speculation is modelled).
  const StepPoint& top = curve_.back();
  return (top.batch / top.step_time) * spec_tokens_ / spec_rows_;
}

double MeshModel::max_calibrated_batch() const {
  // In lanes: window rows eat into the calibrated row budget.
  return std::max(1.0, curve_.back().batch / spec_rows_);
}

}  // namespace voltage::sim
