// Fleet-scale serving simulation: N replicated K-device meshes behind a
// load balancer, driven by open-loop traffic or a closed-loop client pool.
//
// Each mesh runs iteration-level continuous batching exactly like the PR-8
// server: requests join at step boundaries (paying their prefill on the
// step they join), every step generates MeshModel::tokens_per_step()
// tokens for each active sequence (1 without speculation; the expected
// acceptance run length for a with_speculation mesh), and the step's wall
// time comes from the calibrated MeshModel occupancy curve. The balancer routes arrivals; per-mesh admission
// control bounds queue depth; TTFT / end-to-end / queue-wait distributions
// are tracked through obs::Histogram, so the simulator's percentiles are
// bit-identical to what the live server's metrics would report on the same
// samples.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "sim/mesh_model.h"
#include "sim/traffic.h"

namespace voltage::sim {

enum class BalancerPolicy : std::uint8_t {
  kRoundRobin,         // DNS-style rotation, no load feedback
  kJoinShortestQueue,  // fewest queued + in-flight requests
  // Routes to the mesh with the best predicted TTFT and sheds the request
  // when no mesh is predicted to meet the TTFT SLO — trades completed
  // volume for a bounded tail under overload.
  kDeadlineAware,
};

struct FleetConfig {
  std::size_t num_meshes = 1;
  MeshModel mesh = MeshModel::from_bench_serving();
  std::size_t max_batch = 16;          // concurrent sequences per mesh
  std::size_t max_queue_per_mesh = 1024;  // admission control
  BalancerPolicy policy = BalancerPolicy::kJoinShortestQueue;
  Seconds ttft_slo = 0.5;  // target for slo_attainment and kDeadlineAware
};

struct FleetReport {
  std::size_t num_meshes = 0;
  std::size_t offered = 0;    // requests presented to the balancer
  std::size_t completed = 0;
  std::size_t rejected = 0;   // admission / deadline-aware sheds
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  // completed / makespan
  double tokens_per_s = 0.0;  // generated tokens / makespan
  // rho: mesh-seconds demanded by the offered traffic (prefill + decode
  // slot-steps at the saturated rate) over mesh-seconds available. The
  // queue is unstable at rho >= 1: percentiles then depend on how long you
  // watch, and the planner refuses such operating points.
  double offered_load = 0.0;
  bool stable = false;
  double mean_mesh_utilization = 0.0;  // busy fraction of makespan, <= 1
  double slo_attainment = 0.0;  // completed requests with TTFT <= ttft_slo
  Seconds makespan = 0.0;
  obs::HistogramSnapshot ttft;        // arrival -> first generated token
  obs::HistogramSnapshot e2e;         // arrival -> last token
  obs::HistogramSnapshot queue_wait;  // arrival -> joined a batch
};

// Open-loop: pre-generated arrivals (see OpenLoopTraffic::generate).
[[nodiscard]] FleetReport simulate_fleet(const FleetConfig& config,
                                         const std::vector<Request>& requests);
[[nodiscard]] FleetReport simulate_fleet(const FleetConfig& config,
                                         const OpenLoopTraffic& traffic);

// Closed-loop: each client waits for its answer, thinks, asks again.
[[nodiscard]] FleetReport simulate_fleet_closed_loop(
    const FleetConfig& config, const ClosedLoopClients& clients);

}  // namespace voltage::sim
