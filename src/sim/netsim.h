// Event-driven timing of the collectives over the simulated network.
//
// Unlike the closed forms in collective/cost.h (which assume everyone is
// ready at t=0), these take per-rank ready times, so compute skew from
// heterogeneous devices or uneven partitions propagates into communication
// time exactly as it would on a real cluster: an all-gather finishes when
// the slowest sender's data lands.
//
// NIC model: one full-duplex NIC per device; a device's outgoing messages
// serialize through its NIC back-to-back (first message pays the
// per-message latency, pipelined followers pay wire time only); receive
// side is not contended (mirrors switched Ethernet/Wi-Fi APs downstream).
#pragma once

#include <cstddef>
#include <vector>

#include "net/link.h"
#include "sim/engine.h"

namespace voltage::sim {

// Full-mesh all-gather: rank i becomes ready at ready[i] and sends
// bytes_per_rank[i] to every peer. Returns per-rank completion times.
[[nodiscard]] std::vector<SimTime> sim_allgather_fullmesh(
    const std::vector<SimTime>& ready, const std::vector<std::size_t>& bytes_per_rank,
    const LinkModel& link);

// Chunked ring all-reduce of a tensor of `total_bytes`: 2*(K-1) dependent
// steps of total_bytes/K each. Returns per-rank completion times.
[[nodiscard]] std::vector<SimTime> sim_ring_allreduce(
    const std::vector<SimTime>& ready, std::size_t total_bytes,
    const LinkModel& link);

// Gather-to-root + broadcast ("star") all-reduce of `total_bytes`: ranks
// 1..K-1 ship their tensor to rank 0, which reduces and re-broadcasts.
// This is how small-world CPU backends (e.g. gloo at the paper's scale)
// typically reduce activations, and it reproduces the paper's measured
// tensor-parallelism behaviour; the chunked ring above is the
// bandwidth-optimal alternative kept for ablations.
[[nodiscard]] std::vector<SimTime> sim_star_allreduce(
    const std::vector<SimTime>& ready, std::size_t total_bytes,
    const LinkModel& link);

// Root (extra rank) broadcasts `bytes` to k receivers starting at
// root_ready. Returns per-receiver completion times (size k).
[[nodiscard]] std::vector<SimTime> sim_broadcast(SimTime root_ready,
                                                 std::size_t bytes,
                                                 std::size_t k,
                                                 const LinkModel& link);

// Every rank sends bytes[i] to an idle root as soon as it is ready; returns
// the time the root holds everything.
[[nodiscard]] SimTime sim_gather_to_root(const std::vector<SimTime>& ready,
                                         const std::vector<std::size_t>& bytes,
                                         const LinkModel& link);

}  // namespace voltage::sim
