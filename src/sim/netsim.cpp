#include "sim/netsim.h"

#include <algorithm>
#include <stdexcept>

namespace voltage::sim {

namespace {

void check_ranks(std::size_t k) {
  if (k == 0) throw std::invalid_argument("netsim: zero ranks");
}

}  // namespace

std::vector<SimTime> sim_allgather_fullmesh(
    const std::vector<SimTime>& ready,
    const std::vector<std::size_t>& bytes_per_rank, const LinkModel& link) {
  const std::size_t k = ready.size();
  check_ranks(k);
  if (bytes_per_rank.size() != k) {
    throw std::invalid_argument("sim_allgather: bytes/ready size mismatch");
  }
  std::vector<SimTime> done = ready;  // a rank is never done before ready
  if (k == 1) return done;

  Engine engine;
  // Sender i's NIC pipelines its K-1 identical uploads in rotated order
  // (first to rank i+1, then i+2, ...) so no receiver is systematically
  // last; peer j's copy arrives once (j - i) mod K uploads have serialized.
  for (std::size_t i = 0; i < k; ++i) {
    const Seconds wire = link.wire_time(bytes_per_rank[i]);
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      const std::size_t order = (j + k - i) % k;
      const SimTime arrival = ready[i] + link.per_message_latency +
                              static_cast<double>(order) * wire;
      engine.schedule(arrival, [&done, j, arrival] {
        done[j] = std::max(done[j], arrival);
      });
    }
  }
  engine.run();
  return done;
}

std::vector<SimTime> sim_ring_allreduce(const std::vector<SimTime>& ready,
                                        std::size_t total_bytes,
                                        const LinkModel& link) {
  const std::size_t k = ready.size();
  check_ranks(k);
  if (k == 1) return ready;
  const std::size_t chunk = (total_bytes + k - 1) / k;
  const Seconds step_cost = link.transfer_time(chunk);

  // t[i] = time rank i finished its latest step. A step's send departs when
  // the sender finished the previous step; the receiver proceeds once both
  // it and the incoming chunk are ready.
  std::vector<SimTime> t = ready;
  std::vector<SimTime> next(k);
  for (std::size_t step = 0; step < 2 * (k - 1); ++step) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t prev = (i + k - 1) % k;
      next[i] = std::max(t[i], t[prev] + step_cost);
    }
    t = next;
  }
  return t;
}

std::vector<SimTime> sim_star_allreduce(const std::vector<SimTime>& ready,
                                        std::size_t total_bytes,
                                        const LinkModel& link) {
  const std::size_t k = ready.size();
  check_ranks(k);
  if (k == 1) return ready;
  // Reduce phase: ranks 1..K-1 send their full tensor to rank 0 over
  // distinct uplinks; rank 0 holds the sum once the last arrives.
  SimTime reduced = ready[0];
  for (std::size_t i = 1; i < k; ++i) {
    reduced = std::max(reduced, ready[i] + link.transfer_time(total_bytes));
  }
  // Broadcast phase: rank 0's NIC serializes K-1 copies of the result.
  std::vector<SimTime> done(k);
  done[0] = reduced;
  const Seconds wire = link.wire_time(total_bytes);
  for (std::size_t j = 1; j < k; ++j) {
    done[j] = reduced + link.per_message_latency +
              static_cast<double>(j) * wire;
  }
  return done;
}

std::vector<SimTime> sim_broadcast(SimTime root_ready, std::size_t bytes,
                                   std::size_t k, const LinkModel& link) {
  check_ranks(k);
  std::vector<SimTime> done(k);
  const Seconds wire = link.wire_time(bytes);
  for (std::size_t j = 0; j < k; ++j) {
    done[j] = root_ready + link.per_message_latency +
              static_cast<double>(j + 1) * wire;
  }
  return done;
}

SimTime sim_gather_to_root(const std::vector<SimTime>& ready,
                           const std::vector<std::size_t>& bytes,
                           const LinkModel& link) {
  const std::size_t k = ready.size();
  check_ranks(k);
  if (bytes.size() != k) {
    throw std::invalid_argument("sim_gather: bytes/ready size mismatch");
  }
  // Senders are independent (distinct NICs); the root's downlink is modeled
  // as uncontended, so the root has everything when the last arrival lands.
  SimTime done = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    done = std::max(done, ready[i] + link.transfer_time(bytes[i]));
  }
  return done;
}

}  // namespace voltage::sim
