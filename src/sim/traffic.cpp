#include "sim/traffic.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace voltage::sim {

namespace {

// Box-Muller on the 53-bit open-interval uniform; no spare caching so a
// generator shared between normal and uniform draws stays reproducible
// regardless of call interleaving.
double sample_standard_normal(Rng& rng) {
  const double u1 = rng.next_uniform_double();
  const double u2 = rng.next_uniform_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t clamp_tokens(double v, std::size_t lo, std::size_t hi) {
  if (!(v > 0.0)) return lo;
  const double rounded = std::round(v);
  const double clamped =
      std::min(static_cast<double>(hi), std::max(static_cast<double>(lo), rounded));
  return static_cast<std::size_t>(clamped);
}

}  // namespace

Seconds sample_exponential(Rng& rng, double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("sample_exponential: rate <= 0");
  }
  // u in (0, 1): -log never overflows and never manufactures a clamped
  // phantom gap the way the 24-bit float path did.
  return -std::log(rng.next_uniform_double()) / rate;
}

LengthDistribution LengthDistribution::fixed(std::size_t tokens) {
  if (tokens == 0) {
    throw std::invalid_argument("LengthDistribution::fixed: zero tokens");
  }
  LengthDistribution d;
  d.kind_ = Kind::kFixed;
  d.a_ = static_cast<double>(tokens);
  d.min_tokens_ = tokens;
  d.max_tokens_ = tokens;
  return d;
}

LengthDistribution LengthDistribution::lognormal(double median_tokens,
                                                 double sigma,
                                                 std::size_t min_tokens,
                                                 std::size_t max_tokens) {
  if (median_tokens <= 0.0 || sigma < 0.0 || min_tokens == 0 ||
      max_tokens < min_tokens) {
    throw std::invalid_argument("LengthDistribution::lognormal: bad params");
  }
  LengthDistribution d;
  d.kind_ = Kind::kLognormal;
  d.a_ = std::log(median_tokens);
  d.b_ = sigma;
  d.min_tokens_ = min_tokens;
  d.max_tokens_ = max_tokens;
  return d;
}

LengthDistribution LengthDistribution::pareto(double scale_tokens,
                                              double alpha,
                                              std::size_t min_tokens,
                                              std::size_t max_tokens) {
  if (scale_tokens <= 0.0 || alpha <= 0.0 || min_tokens == 0 ||
      max_tokens < min_tokens) {
    throw std::invalid_argument("LengthDistribution::pareto: bad params");
  }
  LengthDistribution d;
  d.kind_ = Kind::kPareto;
  d.a_ = scale_tokens;
  d.b_ = alpha;
  d.min_tokens_ = min_tokens;
  d.max_tokens_ = max_tokens;
  return d;
}

std::size_t LengthDistribution::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return static_cast<std::size_t>(a_);
    case Kind::kLognormal:
      return clamp_tokens(std::exp(a_ + b_ * sample_standard_normal(rng)),
                          min_tokens_, max_tokens_);
    case Kind::kPareto:
      return clamp_tokens(
          a_ * std::pow(rng.next_uniform_double(), -1.0 / b_), min_tokens_,
          max_tokens_);
  }
  return min_tokens_;  // unreachable
}

double LengthDistribution::empirical_mean(std::uint64_t seed,
                                          std::size_t draws) const {
  if (kind_ == Kind::kFixed) return a_;
  if (draws == 0) {
    throw std::invalid_argument("LengthDistribution::empirical_mean: 0 draws");
  }
  Rng rng(seed);
  double sum = 0.0;
  for (std::size_t i = 0; i < draws; ++i) {
    sum += static_cast<double>(sample(rng));
  }
  return sum / static_cast<double>(draws);
}

double DiurnalShape::modulation(Seconds t) const {
  if (amplitude == 0.0) return 1.0;
  return 1.0 + amplitude *
                   std::sin(2.0 * std::numbers::pi * t / period + phase);
}

std::vector<Request> OpenLoopTraffic::generate() const {
  if (base_rate_rps <= 0.0 || num_requests == 0) {
    throw std::invalid_argument(
        "OpenLoopTraffic: need base rate > 0, requests > 0");
  }
  if (diurnal.amplitude < 0.0 || diurnal.amplitude >= 1.0 ||
      diurnal.period <= 0.0) {
    throw std::invalid_argument(
        "OpenLoopTraffic: diurnal amplitude must be in [0, 1), period > 0");
  }
  Rng rng(seed);
  std::vector<Request> out;
  out.reserve(num_requests);
  // Lewis-Shedler thinning against the peak rate: candidate arrivals at
  // the homogeneous peak rate, each kept with probability rate(t) / peak.
  const double peak = base_rate_rps * (1.0 + diurnal.amplitude);
  double t = 0.0;
  while (out.size() < num_requests) {
    t += sample_exponential(rng, peak);
    if (diurnal.amplitude > 0.0 &&
        rng.next_uniform_double() * peak >
            base_rate_rps * diurnal.modulation(t)) {
      continue;
    }
    out.push_back(Request{.arrival = t,
                          .prompt_tokens = prompt.sample(rng),
                          .output_tokens = output.sample(rng)});
  }
  return out;
}

}  // namespace voltage::sim
