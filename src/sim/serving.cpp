#include "sim/serving.h"

#include <algorithm>
#include <stdexcept>

#include "obs/percentile.h"
#include "sim/traffic.h"
#include "tensor/rng.h"

namespace voltage::sim {

namespace {

std::vector<Seconds> poisson_arrivals(const ArrivalProcess& p) {
  if (p.rate_rps <= 0.0 || p.num_requests == 0) {
    throw std::invalid_argument("ArrivalProcess: need rate > 0, requests > 0");
  }
  Rng rng(p.seed);
  std::vector<Seconds> arrivals(p.num_requests);
  double t = 0.0;
  for (Seconds& a : arrivals) {
    t += sample_exponential(rng, p.rate_rps);
    a = t;
  }
  return arrivals;
}

}  // namespace

ServingReport summarize_samples(std::vector<Seconds> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("summarize_samples: no samples");
  }
  std::sort(samples.begin(), samples.end());
  ServingReport report;
  double sum = 0.0;
  for (const Seconds s : samples) sum += s;
  report.mean = sum / static_cast<double>(samples.size());
  report.p50 = obs::nearest_rank(samples, 0.50);
  report.p95 = obs::nearest_rank(samples, 0.95);
  report.p99 = obs::nearest_rank(samples, 0.99);
  report.max = samples.back();
  return report;
}

ServingReport simulate_serving(Seconds service_time,
                               const ArrivalProcess& arrivals) {
  if (service_time <= 0.0) {
    throw std::invalid_argument("simulate_serving: service_time <= 0");
  }
  const std::vector<Seconds> at = poisson_arrivals(arrivals);
  std::vector<Seconds> sojourns(at.size());
  Seconds server_free = 0.0;
  for (std::size_t i = 0; i < at.size(); ++i) {
    const Seconds start = std::max(at[i], server_free);
    server_free = start + service_time;
    sojourns[i] = server_free - at[i];
  }
  const Seconds makespan = server_free;
  ServingReport report = summarize_samples(std::move(sojourns));
  report.offered_load = arrivals.rate_rps * service_time;
  report.stable = report.offered_load < 1.0;
  report.utilization =
      static_cast<double>(at.size()) * service_time / makespan;
  report.throughput_rps = static_cast<double>(at.size()) / makespan;
  return report;
}

ServingReport simulate_pipeline_serving(Seconds request_latency,
                                        Seconds bottleneck,
                                        const ArrivalProcess& arrivals) {
  if (request_latency <= 0.0 || bottleneck <= 0.0) {
    throw std::invalid_argument("simulate_pipeline_serving: bad times");
  }
  if (bottleneck > request_latency) {
    throw std::invalid_argument(
        "simulate_pipeline_serving: bottleneck exceeds request latency");
  }
  const std::vector<Seconds> at = poisson_arrivals(arrivals);
  std::vector<Seconds> sojourns(at.size());
  Seconds next_admission = 0.0;
  Seconds last_departure = 0.0;
  for (std::size_t i = 0; i < at.size(); ++i) {
    const Seconds admitted = std::max(at[i], next_admission);
    next_admission = admitted + bottleneck;
    last_departure = admitted + request_latency;
    sojourns[i] = last_departure - at[i];
  }
  ServingReport report = summarize_samples(std::move(sojourns));
  report.offered_load = arrivals.rate_rps * bottleneck;
  report.stable = report.offered_load < 1.0;
  // The admission stage is the contended resource of the pipeline.
  report.utilization =
      static_cast<double>(at.size()) * bottleneck / last_departure;
  report.throughput_rps = static_cast<double>(at.size()) / last_departure;
  return report;
}

}  // namespace voltage::sim
