#include "sim/serving.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/rng.h"

namespace voltage::sim {

namespace {

std::vector<Seconds> poisson_arrivals(const ArrivalProcess& p) {
  if (p.rate_rps <= 0.0 || p.num_requests == 0) {
    throw std::invalid_argument("ArrivalProcess: need rate > 0, requests > 0");
  }
  Rng rng(p.seed);
  std::vector<Seconds> arrivals(p.num_requests);
  double t = 0.0;
  for (Seconds& a : arrivals) {
    // Exponential inter-arrival via inverse CDF.
    double u = rng.next_uniform();
    if (u <= 0.0) u = 1e-12;
    t += -std::log(u) / p.rate_rps;
    a = t;
  }
  return arrivals;
}

ServingReport summarize(std::vector<Seconds> sojourns, double utilization) {
  std::sort(sojourns.begin(), sojourns.end());
  const auto percentile = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sojourns.size() - 1));
    return sojourns[idx];
  };
  ServingReport report;
  double sum = 0.0;
  for (const Seconds s : sojourns) sum += s;
  report.mean = sum / static_cast<double>(sojourns.size());
  report.p50 = percentile(0.50);
  report.p95 = percentile(0.95);
  report.p99 = percentile(0.99);
  report.max = sojourns.back();
  report.utilization = utilization;
  return report;
}

}  // namespace

ServingReport simulate_serving(Seconds service_time,
                               const ArrivalProcess& arrivals) {
  if (service_time <= 0.0) {
    throw std::invalid_argument("simulate_serving: service_time <= 0");
  }
  const std::vector<Seconds> at = poisson_arrivals(arrivals);
  std::vector<Seconds> sojourns(at.size());
  Seconds server_free = 0.0;
  for (std::size_t i = 0; i < at.size(); ++i) {
    const Seconds start = std::max(at[i], server_free);
    server_free = start + service_time;
    sojourns[i] = server_free - at[i];
  }
  return summarize(std::move(sojourns), arrivals.rate_rps * service_time);
}

ServingReport simulate_pipeline_serving(Seconds request_latency,
                                        Seconds bottleneck,
                                        const ArrivalProcess& arrivals) {
  if (request_latency <= 0.0 || bottleneck <= 0.0) {
    throw std::invalid_argument("simulate_pipeline_serving: bad times");
  }
  if (bottleneck > request_latency) {
    throw std::invalid_argument(
        "simulate_pipeline_serving: bottleneck exceeds request latency");
  }
  const std::vector<Seconds> at = poisson_arrivals(arrivals);
  std::vector<Seconds> sojourns(at.size());
  Seconds next_admission = 0.0;
  for (std::size_t i = 0; i < at.size(); ++i) {
    const Seconds admitted = std::max(at[i], next_admission);
    next_admission = admitted + bottleneck;
    sojourns[i] = admitted + request_latency - at[i];
  }
  return summarize(std::move(sojourns), arrivals.rate_rps * bottleneck);
}

}  // namespace voltage::sim
