// Communication collectives over the in-process Fabric.
//
// These are the real data paths of the two strategies under study:
//   - Voltage needs one all-gather of position partitions per layer
//     (paper Algorithm 2, step 10) plus an initial broadcast and a final
//     gather to the terminal device;
//   - tensor parallelism needs two all-reduces per layer (paper Fig. 2).
// All payloads travel serialized, so Fabric traffic statistics measure the
// true wire volume the paper's §V-C formulas predict.
#pragma once

#include <memory>
#include <vector>

#include "net/quant_codec.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "partition/range.h"
#include "tensor/tensor.h"

namespace voltage {

// Full-mesh all-gather: every group member sends `local` to all others and
// returns the per-rank tensors in group order (own slot = `local`).
// `group[my_index]` must be this caller's fabric id. Every collective takes
// optional RecvOptions: the deadline bounds each blocking receive, so a
// wedged peer surfaces as RecvTimeoutError instead of an infinite wait.
[[nodiscard]] std::vector<Tensor> all_gather(Transport& fabric,
                                             const std::vector<DeviceId>& group,
                                             std::size_t my_index,
                                             const Tensor& local,
                                             MessageTag tag,
                                             const RecvOptions& options = {});

// Split-phase zero-copy all-gather of row partitions. Construction posts the
// sends (payloads borrow `local`'s storage — the shared handle keeps it alive
// while messages sit in mailboxes) and copies the caller's own rows into
// `dst`; wait() receives peer partitions in *arrival order* via recv_any and
// deserializes each directly into `dst` at its range's row offset — no
// per-message tensor allocation, no assemble_rows pass. The gap between the
// two phases is where the runtime overlaps next-layer compute.
//
// `ranges[i]` is the row range owned by `group[i]`; the ranges must tile
// [0, dst.rows()) disjointly for `dst` to come back fully written (checked
// only per-message: each arriving partition must fit its declared range).
// `dst` must outlive wait(); `local` is shared because peers may still be
// reading it after this rank moves on.
//
// `wire` selects the payload encoding: Precision::kInt8 ships one shared
// quantized encode (net/quant_codec.h) instead of borrowing the fp32 rows —
// ~4x fewer wire bytes per peer. The caller's own rows land in `dst` exact
// either way; receivers dequantize transparently. The span's `bytes` counts
// what actually crossed the wire, `raw_bytes` the fp32-equivalent.
class AllGatherInto {
 public:
  AllGatherInto(Transport& fabric, const std::vector<DeviceId>& group,
                std::size_t my_index, std::shared_ptr<const Tensor> local,
                const std::vector<Range>& ranges, Tensor& dst, MessageTag tag,
                const RecvOptions& options = {},
                Precision wire = Precision::kFp32);

  // Blocks until every peer partition has landed in `dst` (or the options
  // deadline passes / the transport is poisoned). Idempotent.
  void wait();

  AllGatherInto(const AllGatherInto&) = delete;
  AllGatherInto& operator=(const AllGatherInto&) = delete;

 private:
  Transport& fabric_;
  const std::vector<DeviceId>& group_;
  std::size_t my_index_;
  const std::vector<Range>& ranges_;
  Tensor& dst_;
  MessageTag tag_;
  RecvOptions options_;
  std::size_t pending_ = 0;
  obs::TraceSpan span_;
};

// One-shot convenience wrapper: construct + wait.
void all_gather_into(Transport& fabric, const std::vector<DeviceId>& group,
                     std::size_t my_index, std::shared_ptr<const Tensor> local,
                     const std::vector<Range>& ranges, Tensor& dst,
                     MessageTag tag, const RecvOptions& options = {},
                     Precision wire = Precision::kFp32);

// Root sends `data` to every other member; non-roots receive into `data`.
// With `wire == Precision::kInt8` the root ships one quantized encode and
// receivers land the dequantized rows (the root's own copy stays exact).
void broadcast(Transport& fabric, const std::vector<DeviceId>& group,
               std::size_t my_index, std::size_t root_index, Tensor& data,
               MessageTag tag, const RecvOptions& options = {},
               Precision wire = Precision::kFp32);

// Classic chunked ring all-reduce (reduce-scatter + all-gather phases,
// 2*(K-1) steps). Returns the elementwise sum of all ranks' tensors.
[[nodiscard]] Tensor ring_all_reduce_sum(Transport& fabric,
                                         const std::vector<DeviceId>& group,
                                         std::size_t my_index, Tensor local,
                                         MessageTag tag,
                                         const RecvOptions& options = {});

// Gather-to-root + broadcast all-reduce; simpler but concentrates traffic at
// the root (kept as an ablation baseline).
[[nodiscard]] Tensor naive_all_reduce_sum(Transport& fabric,
                                          const std::vector<DeviceId>& group,
                                          std::size_t my_index, Tensor local,
                                          MessageTag tag,
                                          const RecvOptions& options = {});

// Reassembles a full [n x F] sequence from per-rank row partitions laid out
// by `ranges` (ranges[i] belongs to parts[i]).
[[nodiscard]] Tensor assemble_rows(const std::vector<Tensor>& parts,
                                   const std::vector<Range>& ranges,
                                   std::size_t n, std::size_t cols);

}  // namespace voltage
