// Communication collectives over the in-process Fabric.
//
// These are the real data paths of the two strategies under study:
//   - Voltage needs one all-gather of position partitions per layer
//     (paper Algorithm 2, step 10) plus an initial broadcast and a final
//     gather to the terminal device;
//   - tensor parallelism needs two all-reduces per layer (paper Fig. 2).
// All payloads travel serialized, so Fabric traffic statistics measure the
// true wire volume the paper's §V-C formulas predict.
#pragma once

#include <vector>

#include "net/transport.h"
#include "partition/range.h"
#include "tensor/tensor.h"

namespace voltage {

// Full-mesh all-gather: every group member sends `local` to all others and
// returns the per-rank tensors in group order (own slot = `local`).
// `group[my_index]` must be this caller's fabric id.
[[nodiscard]] std::vector<Tensor> all_gather(Transport& fabric,
                                             const std::vector<DeviceId>& group,
                                             std::size_t my_index,
                                             const Tensor& local,
                                             MessageTag tag);

// Root sends `data` to every other member; non-roots receive into `data`.
void broadcast(Transport& fabric, const std::vector<DeviceId>& group,
               std::size_t my_index, std::size_t root_index, Tensor& data,
               MessageTag tag);

// Classic chunked ring all-reduce (reduce-scatter + all-gather phases,
// 2*(K-1) steps). Returns the elementwise sum of all ranks' tensors.
[[nodiscard]] Tensor ring_all_reduce_sum(Transport& fabric,
                                         const std::vector<DeviceId>& group,
                                         std::size_t my_index, Tensor local,
                                         MessageTag tag);

// Gather-to-root + broadcast all-reduce; simpler but concentrates traffic at
// the root (kept as an ablation baseline).
[[nodiscard]] Tensor naive_all_reduce_sum(Transport& fabric,
                                          const std::vector<DeviceId>& group,
                                          std::size_t my_index, Tensor local,
                                          MessageTag tag);

// Reassembles a full [n x F] sequence from per-rank row partitions laid out
// by `ranges` (ranges[i] belongs to parts[i]).
[[nodiscard]] Tensor assemble_rows(const std::vector<Tensor>& parts,
                                   const std::vector<Range>& ranges,
                                   std::size_t n, std::size_t cols);

}  // namespace voltage
