// Analytic timing/volume model of the collectives, mirroring the real
// implementations in collectives.cpp under a LinkModel.
//
// Communication-volume accounting reproduces the paper §V-C:
//   Voltage:            (K-1) * N * F / K   elements sent per device per layer
//   tensor parallelism: 4 * (K-1) * N * F / K  (two ring all-reduces)
// hence the headline 4x reduction.
//
// Durations assume all ranks enter the collective simultaneously; the
// discrete-event simulator (src/sim) generalizes to skewed ready times and
// heterogeneous devices, and is validated against these closed forms in the
// homogeneous case.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/link.h"

namespace voltage {

// Full-mesh all-gather of `bytes_per_rank` from each of `k` ranks: each NIC
// pipelines its k-1 uploads back-to-back (one per-message setup cost, then
// serialized wire time).
[[nodiscard]] Seconds allgather_fullmesh_duration(std::size_t bytes_per_rank,
                                                  std::size_t k,
                                                  const LinkModel& link);

// Chunked ring all-reduce of a `total_bytes` tensor: 2*(k-1) dependent
// steps, each moving total_bytes/k and paying the per-message cost. The
// step serialization is what makes tensor parallelism latency-fragile.
[[nodiscard]] Seconds ring_allreduce_duration(std::size_t total_bytes,
                                              std::size_t k,
                                              const LinkModel& link);

// Gather-to-root + broadcast ("star") all-reduce of `total_bytes`: one
// full-tensor upload per non-root rank, then k-1 pipelined downloads from
// the root. Same network-wide volume as the ring, different schedule.
[[nodiscard]] Seconds star_allreduce_duration(std::size_t total_bytes,
                                              std::size_t k,
                                              const LinkModel& link);

// Root-to-all broadcast of `bytes` (k-1 pipelined uploads from the root).
[[nodiscard]] Seconds broadcast_duration(std::size_t bytes, std::size_t k,
                                         const LinkModel& link);

// --- paper §V-C per-device per-layer element counts ----------------------

// Voltage: one all-gather of the device's N/K-position partition.
[[nodiscard]] std::uint64_t voltage_elements_per_device_layer(std::size_t n,
                                                              std::size_t f,
                                                              std::size_t k);

// Tensor parallelism: two ring all-reduces of the full N x F activation.
[[nodiscard]] std::uint64_t tp_elements_per_device_layer(std::size_t n,
                                                         std::size_t f,
                                                         std::size_t k);

}  // namespace voltage
