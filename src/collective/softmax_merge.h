// All-reduce of online-softmax attention partials (distributed decoding).
//
// Each rank contributes the packed per-head (max, denominator,
// weighted-value) triples of its partition-resident positions
// (partition/decode_attention.h); every rank returns with the exact
// log-sum-exp merge over all ranks — mathematically identical to one
// monolithic softmax over the union of the position sets. The reduction runs
// at a designated root (partials merged in rank order, so the result is
// bitwise deterministic regardless of arrival order) and the merged partial
// is broadcast back, putting 2(K-1) messages of R*H*(F_H+2) floats on the
// wire per call — independent of the context length, which is the whole
// point of cache-resident decoding.
//
// The reduction is row-wise, so a batched decode step ships every in-flight
// request's triples in this single collective: row r of every rank's
// partial belongs to request r of the batch, rows never mix, and each row's
// fold order is the same fixed rank order a single-request step uses —
// which is why a batched step stays bitwise identical to B sequential
// steps while paying one message round instead of B.
#pragma once

#include "net/transport.h"
#include "tensor/tensor.h"

namespace voltage {

// `partial` is [R x H*(F_H+2)] packed (R = query rows: 1 for a
// single-sequence step, the batch size for a batched step — all ranks must
// agree on R). Root `group[root_index]` gathers, merges in rank order and
// rebroadcasts; the merged packed partial is returned on every rank. Uses
// `tag` for the rank->root leg and `tag + 1` for the root->rank leg, so
// callers must leave both tags free. A single-rank group returns `partial`
// unchanged.
[[nodiscard]] Tensor all_reduce_softmax_merge(
    Transport& fabric, const std::vector<DeviceId>& group,
    std::size_t my_index, std::size_t root_index, const Tensor& partial,
    std::size_t heads, std::size_t head_dim, MessageTag tag,
    const RecvOptions& options = {});

}  // namespace voltage
