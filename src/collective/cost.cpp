#include "collective/cost.h"

namespace voltage {

Seconds allgather_fullmesh_duration(std::size_t bytes_per_rank, std::size_t k,
                                    const LinkModel& link) {
  if (k <= 1) return 0.0;
  return link.per_message_latency +
         static_cast<double>(k - 1) * link.wire_time(bytes_per_rank);
}

Seconds ring_allreduce_duration(std::size_t total_bytes, std::size_t k,
                                const LinkModel& link) {
  if (k <= 1) return 0.0;
  const std::size_t chunk = (total_bytes + k - 1) / k;
  return 2.0 * static_cast<double>(k - 1) * link.transfer_time(chunk);
}

Seconds star_allreduce_duration(std::size_t total_bytes, std::size_t k,
                                const LinkModel& link) {
  if (k <= 1) return 0.0;
  return link.transfer_time(total_bytes) + link.per_message_latency +
         static_cast<double>(k - 1) * link.wire_time(total_bytes);
}

Seconds broadcast_duration(std::size_t bytes, std::size_t k,
                           const LinkModel& link) {
  if (k <= 1) return 0.0;
  return link.per_message_latency +
         static_cast<double>(k - 1) * link.wire_time(bytes);
}

std::uint64_t voltage_elements_per_device_layer(std::size_t n, std::size_t f,
                                                std::size_t k) {
  if (k <= 1) return 0;
  // (K-1) * (N/K) * F: the device sends its partition to each peer.
  return static_cast<std::uint64_t>(k - 1) * (n / k) * f;
}

std::uint64_t tp_elements_per_device_layer(std::size_t n, std::size_t f,
                                           std::size_t k) {
  if (k <= 1) return 0;
  // Two ring all-reduces, each sending 2*(K-1)/K of the N x F activation.
  return 4 * static_cast<std::uint64_t>(k - 1) * n * f / k;
}

}  // namespace voltage
