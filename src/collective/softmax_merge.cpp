#include "collective/softmax_merge.h"

#include <memory>
#include <stdexcept>

#include "obs/trace.h"
#include "partition/decode_attention.h"
#include "tensor/serialize.h"

namespace voltage {

Tensor all_reduce_softmax_merge(Transport& fabric,
                                const std::vector<DeviceId>& group,
                                std::size_t my_index, std::size_t root_index,
                                const Tensor& partial, std::size_t heads,
                                std::size_t head_dim, MessageTag tag,
                                const RecvOptions& options) {
  if (group.empty()) throw std::invalid_argument("softmax_merge: empty group");
  if (my_index >= group.size() || root_index >= group.size()) {
    throw std::invalid_argument("softmax_merge: rank outside group");
  }
  if (partial.cols() != softmax_partial_cols(heads, head_dim)) {
    throw std::invalid_argument("softmax_merge: partial width mismatch");
  }
  if (partial.rows() == 0) {
    throw std::invalid_argument("softmax_merge: empty batch");
  }
  if (group.size() == 1) return partial;

  const DeviceId self = group[my_index];
  obs::TraceSpan span(obs::thread_tracer(), "softmax_merge", "comm",
                      obs::thread_track());
  span.device(static_cast<std::int64_t>(self)).layer(obs::thread_layer());

  if (my_index != root_index) {
    // Leaf: one partial up, one merged partial down.
    const Payload up =
        tensor_payload_view(std::make_shared<const Tensor>(partial));
    span.bytes(static_cast<std::int64_t>(up.size() + kWireFrameBytes));
    fabric.send(Message{.source = self,
                        .destination = group[root_index],
                        .tag = tag,
                        .payload = up});
    Tensor merged = tensor_from_payload(
        fabric.recv(self, group[root_index], tag + 1, options).payload);
    if (!merged.same_shape(partial)) {
      throw std::runtime_error("softmax_merge: merged shape mismatch");
    }
    return merged;
  }

  // Root: receive every rank's partial (matching by source, so arrival
  // order is irrelevant), then fold them in rank order — the merge is
  // exact but not FP-associative, and a fixed fold order keeps the result
  // bitwise deterministic run to run.
  Tensor merged = softmax_partial_identity(partial.rows(), heads, head_dim);
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (i == my_index) {
      softmax_merge_inplace(merged, partial, heads, head_dim);
      continue;
    }
    const Tensor incoming =
        tensor_from_payload(fabric.recv(self, group[i], tag, options).payload);
    if (!incoming.same_shape(partial)) {
      throw std::runtime_error("softmax_merge: partial shape mismatch");
    }
    softmax_merge_inplace(merged, incoming, heads, head_dim);
  }
  const Payload down =
      tensor_payload_view(std::make_shared<const Tensor>(merged));
  span.bytes(static_cast<std::int64_t>((down.size() + kWireFrameBytes) *
                                       (group.size() - 1)));
  // Highest rank first, rank 0 last. Rank 0 gates the caller's step (it is
  // the rank that reports the decode result), so sending its copy after all
  // the others makes every send of this collective happen-before the step
  // completes — keeping per-step transport byte deltas exact instead of
  // letting a slow peer's down-message be counted against the next step.
  for (std::size_t i = group.size(); i-- > 0;) {
    if (i == my_index) continue;
    fabric.send(Message{.source = self,
                        .destination = group[i],
                        .tag = tag + 1,
                        .payload = down});
  }
  return merged;
}

}  // namespace voltage
