#include "collective/collectives.h"

#include <memory>
#include <stdexcept>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace voltage {

namespace {

void check_group(const std::vector<DeviceId>& group, std::size_t my_index) {
  if (group.empty()) throw std::invalid_argument("collective: empty group");
  if (my_index >= group.size()) {
    throw std::invalid_argument("collective: my_index out of group");
  }
}

// Row range of ring chunk `c` for a tensor with `rows` rows split `k` ways.
Range ring_chunk(std::size_t rows, std::size_t k, std::size_t c) {
  return Range{.begin = rows * c / k, .end = rows * (c + 1) / k};
}

}  // namespace

std::vector<Tensor> all_gather(Transport& fabric,
                               const std::vector<DeviceId>& group,
                               std::size_t my_index, const Tensor& local,
                               MessageTag tag, const RecvOptions& options) {
  check_group(group, my_index);
  // Alone in the group there is nothing to exchange — return before any
  // payload work (the serialize here used to cost a full tensor copy).
  if (group.size() == 1) return {local};
  const DeviceId self = group[my_index];
  auto payload = to_bytes(local);
  // Span covers the full synchronization point — sends plus the wait for
  // every peer's partition; bytes counts what *this* rank puts on the wire
  // (framing included, matching transport stats).
  obs::TraceSpan span(obs::thread_tracer(), "all_gather", "comm",
                      obs::thread_track());
  span.device(static_cast<std::int64_t>(self))
      .layer(obs::thread_layer())
      .bytes(static_cast<std::int64_t>((payload.size() + kWireFrameBytes) *
                                       (group.size() - 1)));
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (i == my_index) continue;
    fabric.send(Message{.source = self,
                        .destination = group[i],
                        .tag = tag,
                        .payload = payload});
  }
  std::vector<Tensor> gathered(group.size());
  gathered[my_index] = local;
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (i == my_index) continue;
    gathered[i] =
        tensor_from_payload(fabric.recv(self, group[i], tag, options).payload);
  }
  return gathered;
}

AllGatherInto::AllGatherInto(Transport& fabric,
                             const std::vector<DeviceId>& group,
                             std::size_t my_index,
                             std::shared_ptr<const Tensor> local,
                             const std::vector<Range>& ranges, Tensor& dst,
                             MessageTag tag, const RecvOptions& options,
                             Precision wire)
    : fabric_(fabric),
      group_(group),
      my_index_(my_index),
      ranges_(ranges),
      dst_(dst),
      tag_(tag),
      options_(options),
      span_(group.size() > 1 ? obs::thread_tracer() : nullptr, "all_gather",
            "comm", obs::thread_track()) {
  check_group(group, my_index);
  if (ranges.size() != group.size()) {
    throw std::invalid_argument("all_gather_into: ranges/group size mismatch");
  }
  if (local == nullptr) {
    throw std::invalid_argument("all_gather_into: null local partition");
  }
  const Range own = ranges[my_index];
  if (local->rows() != own.size()) {
    throw std::invalid_argument("all_gather_into: local/range row mismatch");
  }
  if (own.end > dst.rows() || (!own.empty() && local->cols() != dst.cols())) {
    throw std::invalid_argument("all_gather_into: destination shape mismatch");
  }
  if (!own.empty()) dst.set_rows(own.begin, *local);
  if (group.size() == 1) return;
  const DeviceId self = group[my_index];
  // Either representation is one encode shared by every peer send: the fp32
  // payload borrows local's rows (the shared handle keeps the tensor alive
  // while copies sit in peer mailboxes), the int8 payload owns a single
  // quantized buffer all K-1 messages borrow.
  const std::size_t fp32_size = tensor_wire_bytes(local->size());
  const Payload payload = wire == Precision::kInt8
                              ? quantized_payload(*local)
                              : tensor_payload_view(std::move(local));
  span_.device(static_cast<std::int64_t>(self))
      .layer(obs::thread_layer())
      .bytes(static_cast<std::int64_t>((payload.size() + kWireFrameBytes) *
                                       (group.size() - 1)));
  if (wire == Precision::kInt8) {
    span_.raw_bytes(static_cast<std::int64_t>(
        (fp32_size + kWireFrameBytes) * (group.size() - 1)));
  }
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (i == my_index) continue;
    fabric.send(Message{.source = self,
                        .destination = group[i],
                        .tag = tag,
                        .payload = payload});
  }
  pending_ = group.size() - 1;
}

void AllGatherInto::wait() {
  if (pending_ == 0) {
    span_.finish();
    return;
  }
  const DeviceId self = group_[my_index_];
  {
    // The blocking tail of the sync. No byte attribute: the wire volume is
    // accounted once, on the enclosing all_gather span.
    obs::TraceSpan wait_span(obs::thread_tracer(), "gather_wait", "comm",
                             obs::thread_track());
    wait_span.device(static_cast<std::int64_t>(self))
        .layer(obs::thread_layer());
    // Duplicate-source detection without per-call heap allocation (the
    // steady-state layer loop runs through here): a bitmask covers any
    // realistic group; larger ones fall back to a vector.
    std::uint64_t seen_mask = 0;
    std::vector<bool> seen_big;
    if (group_.size() > 64) {
      seen_big.assign(group_.size(), false);
      seen_big[my_index_] = true;
    } else {
      seen_mask = std::uint64_t{1} << my_index_;
    }
    const auto test_and_set = [&](std::size_t rank) {
      if (!seen_big.empty()) {
        const bool was = seen_big[rank];
        seen_big[rank] = true;
        return was;
      }
      const bool was = ((seen_mask >> rank) & 1U) != 0;
      seen_mask |= std::uint64_t{1} << rank;
      return was;
    };
    while (pending_ > 0) {
      const Message m = fabric_.recv_any(self, tag_, options_);
      std::size_t rank = group_.size();
      for (std::size_t i = 0; i < group_.size(); ++i) {
        if (group_[i] == m.source) {
          rank = i;
          break;
        }
      }
      if (rank == group_.size() || test_and_set(rank)) {
        throw std::runtime_error("all_gather_into: unexpected source");
      }
      const WireShape shape =
          deserialize_into(m.payload, dst_, ranges_[rank].begin);
      if (shape.rows != ranges_[rank].size()) {
        throw std::runtime_error("all_gather_into: partition size mismatch");
      }
      --pending_;
    }
  }
  span_.finish();
}

void all_gather_into(Transport& fabric, const std::vector<DeviceId>& group,
                     std::size_t my_index, std::shared_ptr<const Tensor> local,
                     const std::vector<Range>& ranges, Tensor& dst,
                     MessageTag tag, const RecvOptions& options,
                     Precision wire) {
  AllGatherInto gather(fabric, group, my_index, std::move(local), ranges, dst,
                       tag, options, wire);
  gather.wait();
}

void broadcast(Transport& fabric, const std::vector<DeviceId>& group,
               std::size_t my_index, std::size_t root_index, Tensor& data,
               MessageTag tag, const RecvOptions& options, Precision wire) {
  check_group(group, my_index);
  if (root_index >= group.size()) {
    throw std::invalid_argument("broadcast: root outside group");
  }
  const DeviceId self = group[my_index];
  obs::TraceSpan span(obs::thread_tracer(), "broadcast", "comm",
                      obs::thread_track());
  span.device(static_cast<std::int64_t>(self));
  if (my_index == root_index) {
    if (group.size() == 1) {
      span.bytes(0);
      return;
    }
    // One snapshot copy of `data` (the caller may mutate it after we return
    // while messages still sit in mailboxes) or one quantized encode, then
    // every send borrows it.
    const Payload payload =
        wire == Precision::kInt8
            ? quantized_payload(data)
            : tensor_payload_view(std::make_shared<const Tensor>(data));
    span.bytes(static_cast<std::int64_t>((payload.size() + kWireFrameBytes) *
                                         (group.size() - 1)));
    if (wire == Precision::kInt8) {
      span.raw_bytes(static_cast<std::int64_t>(
          (tensor_wire_bytes(data.size()) + kWireFrameBytes) *
          (group.size() - 1)));
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i == root_index) continue;
      fabric.send(Message{.source = self,
                          .destination = group[i],
                          .tag = tag,
                          .payload = payload});
    }
  } else {
    data = tensor_from_payload(
        fabric.recv(self, group[root_index], tag, options).payload);
  }
}

Tensor ring_all_reduce_sum(Transport& fabric, const std::vector<DeviceId>& group,
                           std::size_t my_index, Tensor local,
                           MessageTag tag, const RecvOptions& options) {
  check_group(group, my_index);
  const std::size_t k = group.size();
  if (k == 1) return local;
  const DeviceId self = group[my_index];
  const std::size_t next = (my_index + 1) % k;
  const std::size_t prev = (my_index + k - 1) % k;
  const std::size_t rows = local.rows();

  obs::TraceSpan span(obs::thread_tracer(), "ring_all_reduce", "comm",
                      obs::thread_track());
  span.device(static_cast<std::int64_t>(self)).layer(obs::thread_layer());
  std::int64_t sent_bytes = 0;

  const auto send_chunk = [&](std::size_t chunk, std::uint64_t step) {
    const Range r = ring_chunk(rows, k, chunk);
    auto payload = to_bytes(local.slice_rows(r.begin, r.end));
    sent_bytes += static_cast<std::int64_t>(payload.size() + kWireFrameBytes);
    fabric.send(Message{.source = self,
                        .destination = group[next],
                        .tag = tag + step,
                        .payload = std::move(payload)});
  };
  const auto recv_chunk = [&](std::uint64_t step) {
    return tensor_from_payload(
        fabric.recv(self, group[prev], tag + step, options).payload);
  };

  // Reduce-scatter: after K-1 steps, rank i holds the full sum of chunk
  // (i + 1) mod K.
  for (std::size_t step = 0; step < k - 1; ++step) {
    const std::size_t send_idx = (my_index + k - step) % k;
    const std::size_t recv_idx = (my_index + k - step - 1) % k;
    send_chunk(send_idx, step);
    const Tensor incoming = recv_chunk(step);
    const Range r = ring_chunk(rows, k, recv_idx);
    for (std::size_t row = r.begin; row < r.end; ++row) {
      auto dst = local.row(row);
      const auto src = incoming.row(row - r.begin);
      for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
    }
  }
  // All-gather: circulate the reduced chunks.
  for (std::size_t step = 0; step < k - 1; ++step) {
    const std::size_t send_idx = (my_index + 1 + k - step) % k;
    const std::size_t recv_idx = (my_index + k - step) % k;
    send_chunk(send_idx, (k - 1) + step);
    const Tensor incoming = recv_chunk((k - 1) + step);
    const Range r = ring_chunk(rows, k, recv_idx);
    if (!r.empty()) local.set_rows(r.begin, incoming);
  }
  span.bytes(sent_bytes);
  return local;
}

Tensor naive_all_reduce_sum(Transport& fabric, const std::vector<DeviceId>& group,
                            std::size_t my_index, Tensor local,
                            MessageTag tag, const RecvOptions& options) {
  check_group(group, my_index);
  const DeviceId self = group[my_index];
  constexpr std::size_t kRoot = 0;
  obs::TraceSpan span(obs::thread_tracer(), "star_all_reduce", "comm",
                      obs::thread_track());
  span.device(static_cast<std::int64_t>(self)).layer(obs::thread_layer());
  if (my_index == kRoot) {
    span.bytes(0);
    for (std::size_t i = 1; i < group.size(); ++i) {
      add_inplace(local, tensor_from_payload(
                             fabric.recv(self, group[i], tag, options).payload));
    }
  } else {
    auto payload = to_bytes(local);
    span.bytes(static_cast<std::int64_t>(payload.size() + kWireFrameBytes));
    fabric.send(Message{.source = self,
                        .destination = group[kRoot],
                        .tag = tag,
                        .payload = std::move(payload)});
  }
  broadcast(fabric, group, my_index, kRoot, local, tag + 1, options);
  return local;
}

Tensor assemble_rows(const std::vector<Tensor>& parts,
                     const std::vector<Range>& ranges, std::size_t n,
                     std::size_t cols) {
  if (parts.size() != ranges.size()) {
    throw std::invalid_argument("assemble_rows: parts/ranges mismatch");
  }
  Tensor out(n, cols);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].rows() != ranges[i].size()) {
      throw std::invalid_argument("assemble_rows: partition size mismatch");
    }
    if (!ranges[i].empty()) out.set_rows(ranges[i].begin, parts[i]);
  }
  return out;
}

}  // namespace voltage
