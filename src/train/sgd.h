// Gradient aggregation and SGD application for LayerGrads — enough
// optimizer machinery to run real (data-parallel, replicated-weights)
// training steps and demonstrate the §V-C weight-synchronization story.
#pragma once

#include "train/layer_backward.h"

namespace voltage {

// Element-wise accumulate: target += other (shapes must match).
void accumulate_grads(LayerGrads& target, const LayerGrads& other);

// Element-wise scale (e.g. 1/batch for averaging).
void scale_grads(LayerGrads& grads, float factor);

// weights -= lr * grads.
void apply_sgd(LayerWeights& weights, const LayerGrads& grads,
               float learning_rate);

// Zero-initialized gradients matching `weights`' shapes.
[[nodiscard]] LayerGrads zero_grads_like(const LayerWeights& weights);

// Flattens all gradient tensors into one vector and back — the transport
// format for the per-batch gradient ring all-reduce.
[[nodiscard]] Tensor flatten_grads(const LayerGrads& grads);
void unflatten_grads(const Tensor& flat, LayerGrads& grads);

}  // namespace voltage
