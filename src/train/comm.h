// Training-communication accounting — the paper's §V-C closing argument,
// quantified.
//
// Tensor parallelism synchronizes per SAMPLE, per LAYER, in both passes:
// two activation all-reduces forward (4(K-1)NF/K per device) and the
// transposed gradient all-reduces backward (another 4(K-1)NF/K).
//
// Voltage replicates the weights; the inference-style forward still costs
// its (K-1)NF/K all-gather per layer, the backward needs the symmetric
// gradient exchange, and then ONE ring all-reduce of the parameter
// gradients per BATCH (2(K-1)/K · P elements per device) reconciles the
// replicas. Per-batch totals therefore scale very differently with batch
// size — this module computes both sides and the crossover.
#pragma once

#include <cstddef>
#include <cstdint>

#include "transformer/config.h"

namespace voltage {

// Per-device elements TP moves for ONE sample through an L-layer model
// (forward + backward).
[[nodiscard]] std::uint64_t tp_training_elements_per_device(
    const ModelSpec& spec, std::size_t n, std::size_t k);

// Per-device elements a replicated-weights (Voltage-style) training step
// moves for a batch of `batch` samples: per-sample forward all-gathers,
// the symmetric backward exchanges, plus one parameter-gradient ring
// all-reduce per batch.
[[nodiscard]] std::uint64_t voltage_training_elements_per_device(
    const ModelSpec& spec, std::size_t n, std::size_t k, std::size_t batch);

// Smallest batch size at which the replicated-weights step moves fewer
// elements per device than TP does (0 if TP is never beaten within
// `max_batch`).
[[nodiscard]] std::size_t training_comm_crossover_batch(const ModelSpec& spec,
                                                        std::size_t n,
                                                        std::size_t k,
                                                        std::size_t max_batch);

}  // namespace voltage
