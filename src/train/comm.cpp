#include "train/comm.h"

#include "collective/cost.h"
#include "transformer/zoo.h"

namespace voltage {

std::uint64_t tp_training_elements_per_device(const ModelSpec& spec,
                                              std::size_t n, std::size_t k) {
  // Forward 4(K-1)NF/K plus the transposed backward synchronization of the
  // same size (paper §V-C), per layer.
  return 2ULL * spec.num_layers *
         tp_elements_per_device_layer(n, spec.layer.hidden, k);
}

std::uint64_t voltage_training_elements_per_device(const ModelSpec& spec,
                                                   std::size_t n,
                                                   std::size_t k,
                                                   std::size_t batch) {
  // Per sample: forward all-gather per layer + the symmetric gradient
  // all-gather on the way back.
  const std::uint64_t per_sample =
      2ULL * spec.num_layers *
      voltage_elements_per_device_layer(n, spec.layer.hidden, k);
  // Per batch: one ring all-reduce of every parameter gradient.
  const std::uint64_t params = spec_parameter_count(spec);
  const std::uint64_t weight_sync =
      k <= 1 ? 0 : 2ULL * (k - 1) * params / k;
  return batch * per_sample + weight_sync;
}

std::size_t training_comm_crossover_batch(const ModelSpec& spec,
                                          std::size_t n, std::size_t k,
                                          std::size_t max_batch) {
  const std::uint64_t tp_per_sample =
      tp_training_elements_per_device(spec, n, k);
  for (std::size_t batch = 1; batch <= max_batch; ++batch) {
    if (voltage_training_elements_per_device(spec, n, k, batch) <
        batch * tp_per_sample) {
      return batch;
    }
  }
  return 0;
}

}  // namespace voltage
