// Backward (gradient) kernels for the tensor ops.
//
// The paper's §V-C communication comparison extends to training: tensor
// parallelism must all-reduce transposed activation gradients every
// backward pass, while Voltage replicates weights and synchronizes
// gradients once per batch. To make that argument executable this module
// implements the actual gradients; everything is verified against central
// finite differences in the test suite.
//
// Convention: for y = f(x), `*_grad` maps upstream dL/dy to dL/dx (and
// parameter gradients where applicable).
#pragma once

#include "tensor/tensor.h"

namespace voltage {

// y = A B.  dA = dY B^T,  dB = A^T dY.
struct MatmulGrads {
  Tensor da;
  Tensor db;
};
[[nodiscard]] MatmulGrads matmul_grad(const Tensor& a, const Tensor& b,
                                      const Tensor& dy);

// y = x + 1·b (bias row broadcast).  db = column sums of dY.
[[nodiscard]] Tensor bias_grad(const Tensor& dy);

// y = softmax_rows(x, pre_scale).  Needs the forward output `y`:
// dX = pre_scale * y ∘ (dY - rowsum(dY ∘ y)).
[[nodiscard]] Tensor softmax_rows_grad(const Tensor& y, const Tensor& dy,
                                       float pre_scale);

// y = layernorm_rows(x, gamma, beta).
struct LayerNormGrads {
  Tensor dx;
  Tensor dgamma;  // 1 x cols
  Tensor dbeta;   // 1 x cols
};
[[nodiscard]] LayerNormGrads layernorm_rows_grad(const Tensor& x,
                                                 const Tensor& gamma,
                                                 const Tensor& dy,
                                                 float eps = 1e-5F);

// Activation gradients need the pre-activation input x.
[[nodiscard]] Tensor relu_grad(const Tensor& x, const Tensor& dy);
[[nodiscard]] Tensor gelu_grad(const Tensor& x, const Tensor& dy);

}  // namespace voltage
