#include "train/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace voltage {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::size_t> labels) {
  if (labels.size() != logits.rows() || logits.rows() == 0) {
    throw std::invalid_argument("softmax_cross_entropy: one label per row");
  }
  const Tensor probs = softmax_rows(logits);
  LossResult result{.loss = 0.0F, .dlogits = probs};
  const float inv_rows = 1.0F / static_cast<float>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    if (labels[r] >= logits.cols()) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    result.loss -= std::log(std::max(probs(r, labels[r]), 1e-30F));
    // d(loss)/d(logits) = (softmax - onehot) / rows.
    result.dlogits(r, labels[r]) -= 1.0F;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      result.dlogits(r, c) *= inv_rows;
    }
  }
  result.loss *= inv_rows;
  return result;
}

}  // namespace voltage
