// Replicated-weights data-parallel trainer — the paper's §V-C training
// story as a reusable component.
//
// K device threads each hold a full replica of a small transformer stack
// plus a mean-pool linear classifier. Every step, device d computes the
// gradients of ITS sample, the flattened gradients are ring-all-reduced
// (the once-per-batch weight synchronization §V-C describes), and each
// replica applies the identical averaged update — so the replicas stay
// bit-identical forever, which the tests assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/fabric.h"
#include "tensor/tensor.h"
#include "train/stack_backward.h"
#include "transformer/layer.h"

namespace voltage {

class DataParallelTrainer {
 public:
  struct Sample {
    Tensor x;           // sequence [N x F]
    std::size_t label;  // class index
  };

  DataParallelTrainer(LayerConfig config, std::size_t num_layers,
                      std::size_t num_classes, std::size_t devices,
                      std::uint64_t seed);

  // One synchronous training step: device d trains on samples[d]
  // (samples.size() must equal devices()). Returns the mean loss.
  float step(std::span<const Sample> samples, float learning_rate);

  // Logits for one sequence under replica 0's current weights.
  [[nodiscard]] Tensor predict(const Tensor& x) const;
  // Loss of one sample under replica 0's current weights.
  [[nodiscard]] float evaluate(const Sample& sample) const;

  [[nodiscard]] std::size_t devices() const noexcept {
    return replicas_.size();
  }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return steps_; }
  // Max abs difference between two replicas' weights (0 when in lockstep).
  [[nodiscard]] float replica_divergence() const;
  [[nodiscard]] const Fabric& fabric() const noexcept { return fabric_; }

 private:
  struct Replica {
    std::vector<TransformerLayer> layers;
    Tensor head_w;  // F x classes
    Tensor head_b;  // 1 x classes
  };

  struct SampleGrads {
    float loss = 0.0F;
    Tensor flat;  // layers' grads + head grads, flattened for the ring
  };

  [[nodiscard]] SampleGrads sample_grads(const Replica& replica,
                                         const Sample& sample) const;
  void apply_flat(Replica& replica, const Tensor& flat,
                  float learning_rate) const;

  LayerConfig config_;
  std::size_t num_classes_;
  std::vector<Replica> replicas_;
  Fabric fabric_;
  std::size_t steps_ = 0;
};

}  // namespace voltage
