#include "train/backward_ops.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace voltage {

MatmulGrads matmul_grad(const Tensor& a, const Tensor& b, const Tensor& dy) {
  if (dy.rows() != a.rows() || dy.cols() != b.cols() ||
      a.cols() != b.rows()) {
    throw std::invalid_argument("matmul_grad: shape mismatch");
  }
  return MatmulGrads{
      .da = matmul(dy, b, Trans::kNo, Trans::kYes),
      .db = matmul(a, dy, Trans::kYes, Trans::kNo),
  };
}

Tensor bias_grad(const Tensor& dy) {
  Tensor db(1, dy.cols());
  auto acc = db.row(0);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const auto row = dy.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) acc[c] += row[c];
  }
  return db;
}

Tensor softmax_rows_grad(const Tensor& y, const Tensor& dy, float pre_scale) {
  if (!y.same_shape(dy)) {
    throw std::invalid_argument("softmax_rows_grad: shape mismatch");
  }
  Tensor dx(y.rows(), y.cols());
  for (std::size_t r = 0; r < y.rows(); ++r) {
    const auto yr = y.row(r);
    const auto dyr = dy.row(r);
    auto out = dx.row(r);
    float dot = 0.0F;
    for (std::size_t c = 0; c < yr.size(); ++c) dot += yr[c] * dyr[c];
    for (std::size_t c = 0; c < yr.size(); ++c) {
      out[c] = pre_scale * yr[c] * (dyr[c] - dot);
    }
  }
  return dx;
}

LayerNormGrads layernorm_rows_grad(const Tensor& x, const Tensor& gamma,
                                   const Tensor& dy, float eps) {
  if (!x.same_shape(dy) || gamma.rows() != 1 || gamma.cols() != x.cols()) {
    throw std::invalid_argument("layernorm_rows_grad: shape mismatch");
  }
  const auto n = static_cast<float>(x.cols());
  LayerNormGrads grads{.dx = Tensor(x.rows(), x.cols()),
                       .dgamma = Tensor(1, x.cols()),
                       .dbeta = Tensor(1, x.cols())};
  const auto g = gamma.row(0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    const auto dyr = dy.row(r);
    float mean = 0.0F;
    for (const float v : xr) mean += v;
    mean /= n;
    float var = 0.0F;
    for (const float v : xr) var += (v - mean) * (v - mean);
    var /= n;
    const float inv_std = 1.0F / std::sqrt(var + eps);

    // h = dY ∘ γ; dX = (h - mean(h) - x̂ ∘ mean(h ∘ x̂)) / σ.
    float mean_h = 0.0F;
    float mean_hx = 0.0F;
    for (std::size_t c = 0; c < xr.size(); ++c) {
      const float xhat = (xr[c] - mean) * inv_std;
      const float h = dyr[c] * g[c];
      mean_h += h;
      mean_hx += h * xhat;
    }
    mean_h /= n;
    mean_hx /= n;

    auto dxr = grads.dx.row(r);
    auto dg = grads.dgamma.row(0);
    auto db = grads.dbeta.row(0);
    for (std::size_t c = 0; c < xr.size(); ++c) {
      const float xhat = (xr[c] - mean) * inv_std;
      const float h = dyr[c] * g[c];
      dxr[c] = (h - mean_h - xhat * mean_hx) * inv_std;
      dg[c] += dyr[c] * xhat;
      db[c] += dyr[c];
    }
  }
  return grads;
}

Tensor relu_grad(const Tensor& x, const Tensor& dy) {
  if (!x.same_shape(dy)) {
    throw std::invalid_argument("relu_grad: shape mismatch");
  }
  Tensor dx = dy;
  const auto fx = x.flat();
  auto fdx = dx.flat();
  for (std::size_t i = 0; i < fx.size(); ++i) {
    if (fx[i] <= 0.0F) fdx[i] = 0.0F;
  }
  return dx;
}

Tensor gelu_grad(const Tensor& x, const Tensor& dy) {
  if (!x.same_shape(dy)) {
    throw std::invalid_argument("gelu_grad: shape mismatch");
  }
  constexpr float kC = 0.7978845608028654F;  // sqrt(2/pi)
  constexpr float kA = 0.044715F;
  Tensor dx(x.rows(), x.cols());
  const auto fx = x.flat();
  const auto fdy = dy.flat();
  auto fdx = dx.flat();
  for (std::size_t i = 0; i < fx.size(); ++i) {
    const float v = fx[i];
    const float u = kC * (v + kA * v * v * v);
    const float t = std::tanh(u);
    const float sech2 = 1.0F - t * t;
    const float du = kC * (1.0F + 3.0F * kA * v * v);
    fdx[i] = fdy[i] * (0.5F * (1.0F + t) + 0.5F * v * sech2 * du);
  }
  return dx;
}

}  // namespace voltage
