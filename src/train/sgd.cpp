#include "train/sgd.h"

#include <stdexcept>
#include <vector>

#include "tensor/ops.h"

namespace voltage {

namespace {

// Applies `fn` to every gradient tensor in a fixed traversal order — the
// single order keeps accumulate/flatten/unflatten/apply consistent.
template <class Grads, class Fn>
void for_each_grad(Grads& grads, Fn&& fn) {
  for (auto& head : grads.heads) {
    fn(head.dwq);
    fn(head.dwk);
    fn(head.dwv);
  }
  fn(grads.dwo);
  fn(grads.dbo);
  fn(grads.dln1_gamma);
  fn(grads.dln1_beta);
  fn(grads.dw1);
  fn(grads.db1);
  fn(grads.dw2);
  fn(grads.db2);
  fn(grads.dln2_gamma);
  fn(grads.dln2_beta);
}

}  // namespace

void accumulate_grads(LayerGrads& target, const LayerGrads& other) {
  if (target.heads.size() != other.heads.size()) {
    throw std::invalid_argument("accumulate_grads: head count mismatch");
  }
  std::vector<const Tensor*> sources;
  for_each_grad(other, [&](const Tensor& t) { sources.push_back(&t); });
  std::size_t i = 0;
  for_each_grad(target, [&](Tensor& t) { add_inplace(t, *sources[i++]); });
}

void scale_grads(LayerGrads& grads, float factor) {
  for_each_grad(grads, [&](Tensor& t) { scale_inplace(t, factor); });
}

void apply_sgd(LayerWeights& weights, const LayerGrads& grads,
               float learning_rate) {
  if (weights.attention.heads.size() != grads.heads.size()) {
    throw std::invalid_argument("apply_sgd: head count mismatch");
  }
  std::vector<Tensor*> params;
  for (HeadWeights& h : weights.attention.heads) {
    params.push_back(&h.wq);
    params.push_back(&h.wk);
    params.push_back(&h.wv);
  }
  params.push_back(&weights.attention.wo);
  params.push_back(&weights.attention.bo);
  params.push_back(&weights.ln_attention.gamma);
  params.push_back(&weights.ln_attention.beta);
  params.push_back(&weights.ffn.w1);
  params.push_back(&weights.ffn.b1);
  params.push_back(&weights.ffn.w2);
  params.push_back(&weights.ffn.b2);
  params.push_back(&weights.ln_ffn.gamma);
  params.push_back(&weights.ln_ffn.beta);

  std::size_t i = 0;
  for_each_grad(grads, [&](const Tensor& g) {
    Tensor* p = params.at(i++);
    if (!p->same_shape(g)) {
      throw std::invalid_argument("apply_sgd: gradient shape mismatch");
    }
    auto fp = p->flat();
    const auto fg = g.flat();
    for (std::size_t j = 0; j < fp.size(); ++j) {
      fp[j] -= learning_rate * fg[j];
    }
  });
}

LayerGrads zero_grads_like(const LayerWeights& weights) {
  LayerGrads grads;
  grads.heads.resize(weights.attention.heads.size());
  for (std::size_t h = 0; h < grads.heads.size(); ++h) {
    const HeadWeights& hw = weights.attention.heads[h];
    grads.heads[h].dwq = Tensor(hw.wq.rows(), hw.wq.cols());
    grads.heads[h].dwk = Tensor(hw.wk.rows(), hw.wk.cols());
    grads.heads[h].dwv = Tensor(hw.wv.rows(), hw.wv.cols());
  }
  grads.dwo = Tensor(weights.attention.wo.rows(), weights.attention.wo.cols());
  grads.dbo = Tensor(1, weights.attention.bo.cols());
  grads.dln1_gamma = Tensor(1, weights.ln_attention.gamma.cols());
  grads.dln1_beta = Tensor(1, weights.ln_attention.beta.cols());
  grads.dw1 = Tensor(weights.ffn.w1.rows(), weights.ffn.w1.cols());
  grads.db1 = Tensor(1, weights.ffn.b1.cols());
  grads.dw2 = Tensor(weights.ffn.w2.rows(), weights.ffn.w2.cols());
  grads.db2 = Tensor(1, weights.ffn.b2.cols());
  grads.dln2_gamma = Tensor(1, weights.ln_ffn.gamma.cols());
  grads.dln2_beta = Tensor(1, weights.ln_ffn.beta.cols());
  return grads;
}

Tensor flatten_grads(const LayerGrads& grads) {
  std::size_t total = 0;
  for_each_grad(grads, [&](const Tensor& t) { total += t.size(); });
  Tensor flat(1, total);
  std::size_t offset = 0;
  auto out = flat.flat();
  for_each_grad(grads, [&](const Tensor& t) {
    const auto src = t.flat();
    for (std::size_t i = 0; i < src.size(); ++i) out[offset + i] = src[i];
    offset += src.size();
  });
  return flat;
}

void unflatten_grads(const Tensor& flat, LayerGrads& grads) {
  std::size_t total = 0;
  for_each_grad(grads, [&](Tensor& t) { total += t.size(); });
  if (flat.size() != total) {
    throw std::invalid_argument("unflatten_grads: size mismatch");
  }
  std::size_t offset = 0;
  const auto src = flat.flat();
  for_each_grad(grads, [&](Tensor& t) {
    auto dst = t.flat();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[offset + i];
    offset += dst.size();
  });
}

}  // namespace voltage
