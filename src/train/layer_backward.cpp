#include "train/layer_backward.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "transformer/attention.h"
#include "transformer/ffn.h"

namespace voltage {

Tensor layer_forward_cached(const TransformerLayer& layer, const Tensor& x,
                            LayerCache& cache) {
  const LayerConfig& cfg = layer.config();
  const LayerWeights& w = layer.weights();
  const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(cfg.head_dim));

  cache.x = x;
  cache.heads.clear();
  cache.heads.reserve(cfg.heads);
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(cfg.heads);
  for (const HeadWeights& hw : w.attention.heads) {
    HeadCache hc;
    hc.q = matmul(x, hw.wq);
    hc.k = matmul(x, hw.wk);
    hc.v = matmul(x, hw.wv);
    Tensor scores = matmul(hc.q, hc.k, Trans::kNo, Trans::kYes);
    if (cfg.causal) apply_causal_mask(scores, 0);
    hc.probs = softmax_rows(scores, inv_sqrt);
    head_outputs.push_back(matmul(hc.probs, hc.v));
    cache.heads.push_back(std::move(hc));
  }
  cache.concat = concat_cols(head_outputs);

  Tensor attn = matmul(cache.concat, w.attention.wo);
  add_bias_inplace(attn, w.attention.bo);
  add_inplace(attn, x);
  cache.r_pre_ln1 = attn;
  cache.y1 = layernorm_rows(cache.r_pre_ln1, w.ln_attention.gamma,
                            w.ln_attention.beta);

  cache.h_pre_act = matmul(cache.y1, w.ffn.w1);
  add_bias_inplace(cache.h_pre_act, w.ffn.b1);
  cache.h_act = cfg.activation == Activation::kGelu ? gelu(cache.h_pre_act)
                                                    : relu(cache.h_pre_act);
  Tensor f = matmul(cache.h_act, w.ffn.w2);
  add_bias_inplace(f, w.ffn.b2);
  add_inplace(f, cache.y1);
  cache.f_pre_ln2 = f;
  return layernorm_rows(cache.f_pre_ln2, w.ln_ffn.gamma, w.ln_ffn.beta);
}

LayerBackwardResult layer_backward(const TransformerLayer& layer,
                                   const LayerCache& cache,
                                   const Tensor& dout) {
  const LayerConfig& cfg = layer.config();
  const LayerWeights& w = layer.weights();
  if (cache.heads.size() != cfg.heads) {
    throw std::invalid_argument("layer_backward: cache/config mismatch");
  }
  const float inv_sqrt = 1.0F / std::sqrt(static_cast<float>(cfg.head_dim));

  LayerBackwardResult res;

  // --- LN2 --------------------------------------------------------------
  LayerNormGrads ln2 =
      layernorm_rows_grad(cache.f_pre_ln2, w.ln_ffn.gamma, dout);
  res.grads.dln2_gamma = std::move(ln2.dgamma);
  res.grads.dln2_beta = std::move(ln2.dbeta);
  const Tensor& dr2 = ln2.dx;  // flows into FFN branch AND the residual

  // --- FFN branch ---------------------------------------------------------
  res.grads.db2 = bias_grad(dr2);
  MatmulGrads w2g = matmul_grad(cache.h_act, w.ffn.w2, dr2);
  res.grads.dw2 = std::move(w2g.db);
  const Tensor dh = cfg.activation == Activation::kGelu
                        ? gelu_grad(cache.h_pre_act, w2g.da)
                        : relu_grad(cache.h_pre_act, w2g.da);
  res.grads.db1 = bias_grad(dh);
  MatmulGrads w1g = matmul_grad(cache.y1, w.ffn.w1, dh);
  res.grads.dw1 = std::move(w1g.db);

  // dY1 = residual path + FFN path.
  Tensor dy1 = dr2;
  add_inplace(dy1, w1g.da);

  // --- LN1 ----------------------------------------------------------------
  LayerNormGrads ln1 =
      layernorm_rows_grad(cache.r_pre_ln1, w.ln_attention.gamma, dy1);
  res.grads.dln1_gamma = std::move(ln1.dgamma);
  res.grads.dln1_beta = std::move(ln1.dbeta);
  const Tensor& dr = ln1.dx;  // attention output grad AND input residual

  // --- attention output projection ----------------------------------------
  res.grads.dbo = bias_grad(dr);
  MatmulGrads wog = matmul_grad(cache.concat, w.attention.wo, dr);
  res.grads.dwo = std::move(wog.db);
  const Tensor& dconcat = wog.da;  // N x H*F_H

  // --- per-head attention backward -----------------------------------------
  res.dx = dr;  // residual path
  res.grads.heads.resize(cfg.heads);
  for (std::size_t h = 0; h < cfg.heads; ++h) {
    const HeadCache& hc = cache.heads[h];
    const HeadWeights& hw = w.attention.heads[h];
    const Tensor dhead =
        dconcat.slice_cols(h * cfg.head_dim, (h + 1) * cfg.head_dim);

    // out = probs · V
    MatmulGrads pv = matmul_grad(hc.probs, hc.v, dhead);
    // probs = softmax(scores / ... ) — masked entries have probs == 0, so
    // their gradient vanishes automatically.
    const Tensor dscores = softmax_rows_grad(hc.probs, pv.da, inv_sqrt);
    // scores = Q K^T
    const Tensor dq = matmul(dscores, hc.k);
    const Tensor dk = matmul(dscores, hc.q, Trans::kYes, Trans::kNo);

    res.grads.heads[h].dwq = matmul(cache.x, dq, Trans::kYes, Trans::kNo);
    res.grads.heads[h].dwk = matmul(cache.x, dk, Trans::kYes, Trans::kNo);
    res.grads.heads[h].dwv = matmul(cache.x, pv.db, Trans::kYes, Trans::kNo);

    add_inplace(res.dx, matmul(dq, hw.wq, Trans::kNo, Trans::kYes));
    add_inplace(res.dx, matmul(dk, hw.wk, Trans::kNo, Trans::kYes));
    add_inplace(res.dx, matmul(pv.db, hw.wv, Trans::kNo, Trans::kYes));
  }
  return res;
}

}  // namespace voltage
