// Backward pass through a stack of transformer layers — chains the
// per-layer backward so whole model bodies can be trained and
// gradient-checked.
#pragma once

#include <span>
#include <vector>

#include "train/layer_backward.h"

namespace voltage {

struct StackCache {
  std::vector<LayerCache> layers;
};

// Forward through all layers, recording every layer's cache.
[[nodiscard]] Tensor stack_forward_cached(
    std::span<const TransformerLayer> layers, Tensor x, StackCache& cache);

struct StackBackwardResult {
  Tensor dx;                      // gradient w.r.t. the stack input
  std::vector<LayerGrads> grads;  // per layer, same order as `layers`
};

[[nodiscard]] StackBackwardResult stack_backward(
    std::span<const TransformerLayer> layers, const StackCache& cache,
    Tensor dout);

}  // namespace voltage
