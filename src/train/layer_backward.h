// Full backward pass through a transformer layer (and its multi-head
// attention), with explicit forward caches. Built to quantify the paper's
// §V-C training-communication comparison and verified end to end against
// finite differences.
#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "train/backward_ops.h"
#include "transformer/layer.h"

namespace voltage {

// Per-head forward intermediates needed by the backward pass.
struct HeadCache {
  Tensor q;      // N x F_H
  Tensor k;      // N x F_H
  Tensor v;      // N x F_H
  Tensor probs;  // N x N (post-softmax)
};

struct LayerCache {
  Tensor x;  // layer input
  std::vector<HeadCache> heads;
  Tensor concat;      // N x H*F_H (head outputs, pre-W_O)
  Tensor r_pre_ln1;   // attention out + bias + residual, pre-LayerNorm
  Tensor y1;          // LN1 output (FFN input)
  Tensor h_pre_act;   // x W1 + b1
  Tensor h_act;       // activation(h_pre_act)
  Tensor f_pre_ln2;   // FFN out + residual, pre-LayerNorm
};

// Parameter gradients, mirroring LayerWeights.
struct HeadGrads {
  Tensor dwq;
  Tensor dwk;
  Tensor dwv;
};

struct LayerGrads {
  std::vector<HeadGrads> heads;
  Tensor dwo;
  Tensor dbo;
  Tensor dln1_gamma;
  Tensor dln1_beta;
  Tensor dw1;
  Tensor db1;
  Tensor dw2;
  Tensor db2;
  Tensor dln2_gamma;
  Tensor dln2_beta;
};

// Forward pass identical to TransformerLayer::forward but recording every
// intermediate the backward pass needs.
[[nodiscard]] Tensor layer_forward_cached(const TransformerLayer& layer,
                                          const Tensor& x, LayerCache& cache);

struct LayerBackwardResult {
  Tensor dx;         // gradient w.r.t. the layer input
  LayerGrads grads;  // gradients w.r.t. every parameter
};

// dL/d(everything) from upstream dL/d(layer output).
[[nodiscard]] LayerBackwardResult layer_backward(const TransformerLayer& layer,
                                                 const LayerCache& cache,
                                                 const Tensor& dout);

}  // namespace voltage
