#include "train/data_parallel.h"

#include <numeric>
#include <stdexcept>
#include <thread>

#include "collective/collectives.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "train/loss.h"
#include "train/sgd.h"

namespace voltage {

DataParallelTrainer::DataParallelTrainer(LayerConfig config,
                                         std::size_t num_layers,
                                         std::size_t num_classes,
                                         std::size_t devices,
                                         std::uint64_t seed)
    : config_(config),
      num_classes_(num_classes),
      fabric_(devices == 0 ? 1 : devices) {
  config_.validate();
  if (num_layers == 0 || num_classes == 0 || devices == 0) {
    throw std::invalid_argument("DataParallelTrainer: zero-sized argument");
  }
  // One RNG: every replica starts from the same weights.
  Rng rng(seed);
  Replica prototype;
  for (std::size_t l = 0; l < num_layers; ++l) {
    prototype.layers.emplace_back(config_, init_layer_weights(config_, rng));
  }
  prototype.head_w = rng.normal_tensor(config_.hidden, num_classes, 0.2F);
  prototype.head_b = Tensor(1, num_classes);
  replicas_.assign(devices, prototype);
}

DataParallelTrainer::SampleGrads DataParallelTrainer::sample_grads(
    const Replica& replica, const Sample& sample) const {
  StackCache cache;
  const Tensor hidden =
      stack_forward_cached(replica.layers, sample.x, cache);
  const Tensor pooled = mean_rows(hidden);
  Tensor logits = matmul(pooled, replica.head_w);
  add_bias_inplace(logits, replica.head_b);

  const std::size_t labels[] = {sample.label};
  const LossResult loss =
      softmax_cross_entropy(logits, std::span<const std::size_t>(labels));

  const MatmulGrads head = matmul_grad(pooled, replica.head_w, loss.dlogits);
  // Mean pooling spreads the pooled gradient evenly over the rows.
  Tensor dhidden(hidden.rows(), hidden.cols());
  const float inv_rows = 1.0F / static_cast<float>(hidden.rows());
  for (std::size_t r = 0; r < hidden.rows(); ++r) {
    for (std::size_t c = 0; c < hidden.cols(); ++c) {
      dhidden(r, c) = head.da(0, c) * inv_rows;
    }
  }
  const StackBackwardResult back =
      stack_backward(replica.layers, cache, std::move(dhidden));

  // Flatten layer grads + head grads into one ring payload.
  std::vector<Tensor> pieces;
  pieces.reserve(back.grads.size() + 2);
  for (const LayerGrads& g : back.grads) pieces.push_back(flatten_grads(g));
  Tensor head_w_flat(1, head.db.size());
  std::copy(head.db.flat().begin(), head.db.flat().end(),
            head_w_flat.flat().begin());
  pieces.push_back(std::move(head_w_flat));
  pieces.push_back(bias_grad(loss.dlogits));

  std::size_t total = 0;
  for (const Tensor& p : pieces) total += p.size();
  Tensor flat(1, total);
  std::size_t offset = 0;
  for (const Tensor& p : pieces) {
    std::copy(p.flat().begin(), p.flat().end(),
              flat.flat().begin() + static_cast<std::ptrdiff_t>(offset));
    offset += p.size();
  }
  return SampleGrads{.loss = loss.loss, .flat = std::move(flat)};
}

void DataParallelTrainer::apply_flat(Replica& replica, const Tensor& flat,
                                     float learning_rate) const {
  std::size_t offset = 0;
  for (TransformerLayer& layer : replica.layers) {
    LayerGrads grads = zero_grads_like(layer.weights());
    const std::size_t count = flatten_grads(grads).size();
    Tensor slice(1, count);
    std::copy(flat.flat().begin() + static_cast<std::ptrdiff_t>(offset),
              flat.flat().begin() + static_cast<std::ptrdiff_t>(offset + count),
              slice.flat().begin());
    unflatten_grads(slice, grads);
    apply_sgd(layer.mutable_weights(), grads, learning_rate);
    offset += count;
  }
  auto fw = replica.head_w.flat();
  for (std::size_t i = 0; i < fw.size(); ++i) {
    fw[i] -= learning_rate * flat.flat()[offset + i];
  }
  offset += fw.size();
  auto fb = replica.head_b.flat();
  for (std::size_t i = 0; i < fb.size(); ++i) {
    fb[i] -= learning_rate * flat.flat()[offset + i];
  }
  offset += fb.size();
  if (offset != flat.size()) {
    throw std::logic_error("DataParallelTrainer: gradient layout mismatch");
  }
}

float DataParallelTrainer::step(std::span<const Sample> samples,
                                float learning_rate) {
  const std::size_t k = devices();
  if (samples.size() != k) {
    throw std::invalid_argument(
        "DataParallelTrainer: one sample per device required");
  }
  std::vector<DeviceId> group(k);
  std::iota(group.begin(), group.end(), DeviceId{0});
  const MessageTag tag = 1 + 64 * static_cast<MessageTag>(steps_);

  std::vector<float> losses(k);
  std::vector<std::thread> threads;
  threads.reserve(k);
  const float inv_k = 1.0F / static_cast<float>(k);
  for (std::size_t d = 0; d < k; ++d) {
    threads.emplace_back([&, d] {
      SampleGrads grads = sample_grads(replicas_[d], samples[d]);
      losses[d] = grads.loss;
      Tensor summed = k == 1 ? std::move(grads.flat)
                             : ring_all_reduce_sum(fabric_, group, d,
                                                   std::move(grads.flat), tag);
      scale_inplace(summed, inv_k);
      apply_flat(replicas_[d], summed, learning_rate);
    });
  }
  for (std::thread& t : threads) t.join();
  ++steps_;

  float mean = 0.0F;
  for (const float l : losses) mean += l;
  return mean * inv_k;
}

Tensor DataParallelTrainer::predict(const Tensor& x) const {
  const Replica& r = replicas_.front();
  Tensor hidden = x;
  for (const TransformerLayer& layer : r.layers) {
    hidden = layer.forward(hidden);
  }
  Tensor logits = matmul(mean_rows(hidden), r.head_w);
  add_bias_inplace(logits, r.head_b);
  return logits;
}

float DataParallelTrainer::evaluate(const Sample& sample) const {
  const Tensor logits = predict(sample.x);
  const std::size_t labels[] = {sample.label};
  return softmax_cross_entropy(logits, std::span<const std::size_t>(labels))
      .loss;
}

float DataParallelTrainer::replica_divergence() const {
  float worst = 0.0F;
  for (std::size_t d = 1; d < replicas_.size(); ++d) {
    worst = std::max(worst, max_abs_diff(replicas_.front().head_w,
                                         replicas_[d].head_w));
    worst = std::max(
        worst, max_abs_diff(replicas_.front().layers.front().weights().ffn.w1,
                            replicas_[d].layers.front().weights().ffn.w1));
  }
  return worst;
}

}  // namespace voltage
