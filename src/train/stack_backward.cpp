#include "train/stack_backward.h"

#include <stdexcept>

namespace voltage {

Tensor stack_forward_cached(std::span<const TransformerLayer> layers,
                            Tensor x, StackCache& cache) {
  cache.layers.assign(layers.size(), LayerCache{});
  for (std::size_t l = 0; l < layers.size(); ++l) {
    x = layer_forward_cached(layers[l], x, cache.layers[l]);
  }
  return x;
}

StackBackwardResult stack_backward(std::span<const TransformerLayer> layers,
                                   const StackCache& cache, Tensor dout) {
  if (cache.layers.size() != layers.size()) {
    throw std::invalid_argument("stack_backward: cache/layer count mismatch");
  }
  StackBackwardResult result;
  result.grads.resize(layers.size());
  for (std::size_t l = layers.size(); l-- > 0;) {
    LayerBackwardResult back =
        layer_backward(layers[l], cache.layers[l], dout);
    result.grads[l] = std::move(back.grads);
    dout = std::move(back.dx);
  }
  result.dx = std::move(dout);
  return result;
}

}  // namespace voltage
