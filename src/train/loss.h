// Softmax cross-entropy loss — the training head for gradient-check tests
// and the training-communication analysis.
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace voltage {

struct LossResult {
  float loss = 0.0F;
  Tensor dlogits;  // same shape as the logits
};

// Mean softmax cross-entropy over rows; labels[r] is row r's class index.
[[nodiscard]] LossResult softmax_cross_entropy(
    const Tensor& logits, std::span<const std::size_t> labels);

}  // namespace voltage
