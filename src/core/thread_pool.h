// Shared intra-op thread pool and deterministic parallel_for.
//
// Design constraints, in order:
//   1. Determinism. parallel_for splits [begin, end) into contiguous chunks
//      and every index is processed exactly once by exactly one chunk. Callers
//      partition *rows* of row-major tensors, so each row's FP summation order
//      is fixed regardless of the thread count or which worker runs a chunk —
//      results are bitwise identical at any intra-op budget.
//   2. One pool per process. Workers are started lazily on first parallel use
//      and shared by every kernel; oversubscription is bounded by the pool
//      size, not by the number of concurrent GEMMs.
//   3. A per-thread budget, not a global one. The paper's deployment model is
//      one vCPU per edge device, so VoltageRuntime device threads run with an
//      intra-op budget of 1 (kernels inline, zero pool traffic) while
//      single-device baselines and the serving terminal use every core.
//
// Budget resolution for the calling thread:
//   IntraOpScope override (thread-local, RAII)
//     else set_intra_op_threads() process default
//     else VOLTAGE_THREADS environment variable
//     else std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <type_traits>

namespace voltage {

// Process-wide default intra-op thread budget. 0 restores "auto"
// (VOLTAGE_THREADS, else hardware concurrency).
void set_intra_op_threads(std::size_t n) noexcept;

// Effective budget for the calling thread (>= 1): the innermost live
// IntraOpScope, else the process default.
[[nodiscard]] std::size_t intra_op_threads() noexcept;

// Thread-local budget override for the scope's lifetime. The runtime wraps
// each device thread's body in IntraOpScope(1) to preserve the paper's
// 1-vCPU-per-device model.
class IntraOpScope {
 public:
  explicit IntraOpScope(std::size_t n) noexcept;
  ~IntraOpScope();

  IntraOpScope(const IntraOpScope&) = delete;
  IntraOpScope& operator=(const IntraOpScope&) = delete;

 private:
  std::size_t previous_;
};

namespace detail {

// Type-erased body: fn(ctx, chunk_begin, chunk_end). Runs chunks on the
// shared pool (caller participates), rethrows the first chunk exception.
void parallel_for_impl(std::size_t begin, std::size_t end, std::size_t grain,
                       void (*fn)(void*, std::size_t, std::size_t), void* ctx);

}  // namespace detail

// Calls f(chunk_begin, chunk_end) over disjoint contiguous chunks covering
// [begin, end). Runs inline when the caller's budget is 1, the range fits in
// one grain, or the caller is itself a pool worker (nested parallelism never
// deadlocks — it serializes). `grain` is the smallest chunk worth a task.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  F&& f) {
  using Fn = std::remove_reference_t<F>;
  detail::parallel_for_impl(
      begin, end, grain,
      [](void* ctx, std::size_t b, std::size_t e) {
        (*static_cast<Fn*>(ctx))(b, e);
      },
      const_cast<void*>(static_cast<const void*>(&f)));
}

}  // namespace voltage
