#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace voltage {

namespace {

std::size_t hardware_threads() noexcept {
  // hardware_concurrency() is a syscall on glibc; cache it — this sits on
  // the per-matmul dispatch path.
  static const std::size_t cached = [] {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? std::size_t{1} : static_cast<std::size_t>(n);
  }();
  return cached;
}

// VOLTAGE_THREADS, parsed once. 0 / unset / garbage means "auto".
std::size_t env_threads() noexcept {
  static const std::size_t parsed = [] {
    const char* s = std::getenv("VOLTAGE_THREADS");
    if (s == nullptr || *s == '\0') return std::size_t{0};
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0') return std::size_t{0};
    return static_cast<std::size_t>(v);
  }();
  return parsed;
}

std::atomic<std::size_t> g_default_threads{0};  // 0 = auto
thread_local std::size_t t_override = 0;        // 0 = no override
thread_local bool t_in_parallel_region = false;

// One completed chunk of a parallel_for; chunks from concurrent regions
// interleave freely on the queue.
struct Chunk {
  void (*fn)(void*, std::size_t, std::size_t);
  void* ctx;
  std::size_t begin;
  std::size_t end;
  struct Region* region;
};

// Shared state of one parallel_for call, on the caller's stack.
struct Region {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  std::exception_ptr error;

  void run(const Chunk& c) noexcept {
    t_in_parallel_region = true;
    try {
      c.fn(c.ctx, c.begin, c.end);
    } catch (...) {
      const std::lock_guard lock(mutex);
      if (!error) error = std::current_exception();
    }
    t_in_parallel_region = false;
    {
      const std::lock_guard lock(mutex);
      --pending;
      if (pending == 0) done_cv.notify_all();
    }
  }
};

// Lazily started fixed-size worker pool. Sized generously relative to the
// host so tests can ask for budgets above the core count (the determinism
// suite runs 4 "threads" on a 1-core CI box).
class Pool {
 public:
  static Pool& shared() {
    static Pool pool(std::max<std::size_t>(hardware_threads(), 8) - 1);
    return pool;
  }

  [[nodiscard]] std::size_t workers() const noexcept {
    return workers_.size();
  }

  void submit(std::vector<Chunk> chunks) {
    {
      const std::lock_guard lock(mutex_);
      for (Chunk& c : chunks) queue_.push_back(c);
    }
    if (chunks.size() == 1) {
      work_cv_.notify_one();
    } else {
      work_cv_.notify_all();
    }
  }

  // Caller-side help: drain queued chunks while waiting for its region.
  bool try_run_one() {
    Chunk c;
    {
      const std::lock_guard lock(mutex_);
      if (queue_.empty()) return false;
      c = queue_.front();
      queue_.pop_front();
    }
    c.region->run(c);
    return true;
  }

 private:
  explicit Pool(std::size_t workers) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      const std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void worker_loop() {
    for (;;) {
      Chunk c;
      {
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
        if (queue_.empty()) return;  // only on stop
        c = queue_.front();
        queue_.pop_front();
      }
      c.region->run(c);
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Chunk> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

void set_intra_op_threads(std::size_t n) noexcept {
  g_default_threads.store(n, std::memory_order_relaxed);
}

std::size_t intra_op_threads() noexcept {
  if (t_override != 0) return t_override;
  const std::size_t set = g_default_threads.load(std::memory_order_relaxed);
  if (set != 0) return set;
  const std::size_t env = env_threads();
  if (env != 0) return env;
  return hardware_threads();
}

IntraOpScope::IntraOpScope(std::size_t n) noexcept : previous_(t_override) {
  t_override = n == 0 ? 1 : n;
}

IntraOpScope::~IntraOpScope() { t_override = previous_; }

namespace detail {

void parallel_for_impl(std::size_t begin, std::size_t end, std::size_t grain,
                       void (*fn)(void*, std::size_t, std::size_t),
                       void* ctx) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  const std::size_t min_chunk = std::max<std::size_t>(grain, 1);
  if (range <= min_chunk) {  // one chunk: skip budget and pool entirely
    fn(ctx, begin, end);
    return;
  }
  std::size_t budget = intra_op_threads();
  if (t_in_parallel_region) budget = 1;  // nested regions serialize
  const std::size_t max_chunks =
      std::min(budget, Pool::shared().workers() + 1);
  const std::size_t chunks =
      std::min(max_chunks, (range + min_chunk - 1) / min_chunk);
  if (chunks <= 1) {
    fn(ctx, begin, end);
    return;
  }

  // Even contiguous split; the first `rem` chunks get one extra index.
  const std::size_t base = range / chunks;
  const std::size_t rem = range % chunks;
  Region region;
  region.pending = chunks;
  std::vector<Chunk> posted;
  posted.reserve(chunks - 1);
  std::size_t at = begin;
  Chunk first{};
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t len = base + (i < rem ? 1 : 0);
    const Chunk c{fn, ctx, at, at + len, &region};
    at += len;
    if (i == 0) {
      first = c;
    } else {
      posted.push_back(c);
    }
  }
  Pool::shared().submit(std::move(posted));
  region.run(first);

  // Help drain the queue (our chunks or someone else's) until ours finish.
  for (;;) {
    {
      const std::lock_guard lock(region.mutex);
      if (region.pending == 0) break;
    }
    if (!Pool::shared().try_run_one()) {
      std::unique_lock lock(region.mutex);
      region.done_cv.wait(lock, [&region] { return region.pending == 0; });
      break;
    }
  }
  if (region.error) std::rethrow_exception(region.error);
}

}  // namespace detail

}  // namespace voltage
