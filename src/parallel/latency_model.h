// End-to-end latency simulation of the three deployment strategies (paper
// §VI experiments), combining the exact per-device work profiles with the
// discrete-event network simulator.
//
// Latency is measured the way the paper measures it: from the terminal
// device broadcasting the request features until it holds the final layer
// output (plus terminal-side pre/post-processing).
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.h"
#include "parallel/profile.h"
#include "partition/order.h"
#include "partition/schedule.h"
#include "partition/scheme.h"
#include "sim/cluster.h"
#include "transformer/config.h"

namespace voltage {

// Per-layer breakdown on the critical path: the slowest device's compute
// time for the layer and the wall time the following synchronization adds.
struct LayerTrace {
  Seconds compute = 0.0;
  Seconds sync = 0.0;
};

struct LatencyReport {
  Seconds total = 0.0;
  Seconds pre_post = 0.0;        // terminal-side embedding + head
  Seconds max_device_compute = 0.0;  // busiest device's total compute time
  // Critical-path time not explained by compute: communication + the
  // synchronization stalls it induces.
  Seconds comm_and_stall = 0.0;
  std::uint64_t bytes_sent_per_device = 0;  // busiest worker, whole inference
  std::uint64_t total_bytes_sent = 0;       // all workers, whole inference
  std::uint64_t messages_per_device = 0;
  std::size_t devices = 1;
  // One entry per transformer layer (empty for single-device, whose layers
  // have no synchronization structure worth tracing).
  std::vector<LayerTrace> layer_traces;
};

// All-reduce algorithm for the tensor-parallelism simulation. kStar
// (gather-to-root + broadcast) matches the paper's measured TP behaviour at
// CPU/gloo scale and is the default; kRing is the bandwidth-optimal
// alternative kept as an ablation.
enum class AllReduceAlgo : std::uint8_t { kStar, kRing };

// Sequence length the paper uses for this model (200 tokens for text,
// patches + [CLS] for ViT).
[[nodiscard]] std::size_t paper_sequence_length(const ModelSpec& spec);

// Single-device deployment: terminal embeds, ships features to the one
// worker, which runs all layers and returns the final hidden states.
[[nodiscard]] LatencyReport simulate_single_device(const ModelSpec& spec,
                                                   std::size_t n,
                                                   const sim::Cluster& cluster);

// Voltage (Algorithm 2): broadcast features, per layer each worker computes
// its position partition (Algorithm 1) and all-gathers; the last layer's
// partitions go straight to the terminal.
[[nodiscard]] LatencyReport simulate_voltage(const ModelSpec& spec,
                                             std::size_t n,
                                             const sim::Cluster& cluster,
                                             const PartitionScheme& scheme,
                                             OrderPolicy policy);

// Voltage with a per-layer partition schedule (paper §V-B future work);
// `schedule.num_layers()` must match the model.
[[nodiscard]] LatencyReport simulate_voltage(const ModelSpec& spec,
                                             std::size_t n,
                                             const sim::Cluster& cluster,
                                             const LayerSchedule& schedule,
                                             OrderPolicy policy);

// Megatron-style tensor parallelism (paper Fig. 2): heads and FFN columns
// split across workers, two ring all-reduces per layer.
[[nodiscard]] LatencyReport simulate_tensor_parallel(
    const ModelSpec& spec, std::size_t n, const sim::Cluster& cluster,
    AllReduceAlgo algo = AllReduceAlgo::kStar);

// --- Fleet-simulator calibration hooks -------------------------------------

// Wall time one continuous-batching decode step spends on the wire, for a
// measured per-step message/byte profile (BENCH_serving.json: message count
// constant in batch, bytes sublinear) priced over `link`. The step's
// messages are the chatty kind the paper's link model was built for — each
// pays the per-message latency, and the step's bytes serialize at link
// bandwidth. sim::MeshModel::with_link uses this to re-price the measured
// occupancy curve from the loopback calibration link onto an edge link
// (inline so the sim layer can price wire without linking voltage_parallel,
// which itself links voltage_sim).
[[nodiscard]] inline Seconds decode_step_wire_time(double messages,
                                                   double bytes,
                                                   const LinkModel& link) {
  return messages * link.per_message_latency + bytes * 8.0 / link.bandwidth_bps;
}

// Multi-row decode step (a speculative verify window or a multi-token
// extend): the round still sends the same `messages` — that is the whole
// point of the window protocol — but its payload grows linearly in the rows
// carried: `fixed_bytes` of per-step framing plus `bytes_per_row` for each
// verified position (embedded row out, per-row merge triples and final
// hidden row back). Per-message latency is therefore amortized over `rows`
// while serialization is not.
[[nodiscard]] inline Seconds decode_step_wire_time(double messages,
                                                   double fixed_bytes,
                                                   double bytes_per_row,
                                                   double rows,
                                                   const LinkModel& link) {
  return decode_step_wire_time(messages, fixed_bytes + bytes_per_row * rows,
                               link);
}

}  // namespace voltage
