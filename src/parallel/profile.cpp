#include "parallel/profile.h"

#include "partition/flop_model.h"

namespace voltage {

namespace {

using U = std::uint64_t;

U activation_cost_per_element(Activation act) {
  // Mirrors tensor/ops.cpp: gelu reports 8 ops/element, relu 1.
  return act == Activation::kGelu ? 8 : 1;
}

// Elementwise ops of the position-wise tail of a layer (everything after
// the attention scores) for `rows` positions: W_O bias + residual + LN,
// FFN biases + activation + residual + LN. Mirrors ops.cpp accounting.
U position_wise_tail_elementwise(const LayerConfig& c, U rows) {
  const U f = c.hidden;
  const U ffn = c.ffn_dim;
  const U act = activation_cost_per_element(c.activation);
  // bo add (rows*F) + residual (rows*F) + LN1 (5*rows*F)
  // + b1 (rows*ffn) + act (act*rows*ffn) + b2 (rows*F)
  // + residual (rows*F) + LN2 (5*rows*F)
  return rows * f * (1 + 1 + 5 + 1 + 1 + 5) + rows * ffn * (1 + act);
}

}  // namespace

LayerWork voltage_layer_work(const LayerConfig& config, std::size_t n, Range p,
                             OrderPolicy policy) {
  config.validate();
  if (p.empty()) return {};
  const AttentionDims dims{
      .n = n, .p = p.size(), .f = config.hidden, .fh = config.head_dim};
  const AttentionOrder order = select_order(policy, dims);
  LayerWork work;
  work.macs = gamma_partitioned_layer(config, n, p.size(), order);
  // Per-head softmax over P x N scores: 4 ops/element (ops.cpp).
  work.elementwise = static_cast<U>(config.heads) * 4 * p.size() * n +
                     position_wise_tail_elementwise(config, p.size());
  return work;
}

LayerWork tp_layer_work(const LayerConfig& config, std::size_t n,
                        std::size_t heads_assigned,
                        std::size_t ffn_cols_assigned,
                        bool include_replicated) {
  config.validate();
  const U f = config.hidden;
  const U fh = config.head_dim;
  const U nn = n;
  LayerWork work;
  // Each assigned head runs full-sequence attention (Q, K, V projections,
  // scores, weighted sum) ...
  work.macs = static_cast<U>(heads_assigned) *
              gamma_full_attention_head(n, config.hidden, config.head_dim);
  // ... plus its rows of the W_O projection,
  work.macs += nn * (static_cast<U>(heads_assigned) * fh) * f;
  // ... plus the column shard of W1 and row shard of W2.
  work.macs += 2 * nn * f * static_cast<U>(ffn_cols_assigned);

  work.elementwise = static_cast<U>(heads_assigned) * 4 * nn * nn;  // softmax
  work.elementwise +=
      nn * static_cast<U>(ffn_cols_assigned) *
      (1 + activation_cost_per_element(config.activation));  // b1 + act
  if (include_replicated) {
    // Position-wise ops replicated on every device after each all-reduce:
    // bo + residual + LN1 + b2 + residual + LN2 over the full N x F.
    work.elementwise += nn * f * (1 + 1 + 5 + 1 + 1 + 5);
  }
  return work;
}

LayerWork full_layer_work(const LayerConfig& config, std::size_t n) {
  return voltage_layer_work(config, n, Range{.begin = 0, .end = n},
                            OrderPolicy::kAlwaysNaive);
}

LayerWork embedding_work(const ModelSpec& spec, std::size_t n) {
  LayerWork work;
  const U f = spec.layer.hidden;
  if (spec.kind == ModelKind::kImageClassifier) {
    const U patch_dim =
        static_cast<U>(spec.patch_size) * spec.patch_size * spec.channels;
    const U patches = static_cast<U>(n) - 1;  // minus [CLS]
    work.macs = patches * patch_dim * f;      // patch projection GEMM
    work.elementwise = static_cast<U>(n) * f; // position add
  } else {
    // Token lookup + positional add.
    work.elementwise = static_cast<U>(n) * f;
  }
  return work;
}

LayerWork head_work(const ModelSpec& spec) {
  LayerWork work;
  const U f = spec.layer.hidden;
  const U out = spec.kind == ModelKind::kCausalLm
                    ? static_cast<U>(spec.vocab_size)
                    : static_cast<U>(spec.num_classes);
  work.macs = f * out;      // single pooled row times the head matrix
  work.elementwise = out;   // bias
  return work;
}

}  // namespace voltage
