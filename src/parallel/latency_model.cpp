#include "parallel/latency_model.h"

#include <algorithm>
#include <stdexcept>

#include "partition/flop_model.h"
#include "sim/netsim.h"
#include "tensor/serialize.h"
#include "transformer/zoo.h"

namespace voltage {

namespace {

using sim::SimTime;

std::size_t activation_bytes(std::size_t rows, std::size_t cols) {
  return tensor_wire_bytes(rows * cols);
}

struct Accumulator {
  std::vector<Seconds> device_compute;  // per worker
  std::vector<std::uint64_t> device_bytes;
  std::vector<std::uint64_t> device_messages;

  explicit Accumulator(std::size_t k)
      : device_compute(k, 0.0), device_bytes(k, 0), device_messages(k, 0) {}

  void fill_report(LatencyReport& report) const {
    for (const std::uint64_t b : device_bytes) report.total_bytes_sent += b;
    report.max_device_compute =
        device_compute.empty()
            ? 0.0
            : *std::max_element(device_compute.begin(), device_compute.end());
    report.bytes_sent_per_device =
        device_bytes.empty()
            ? 0
            : *std::max_element(device_bytes.begin(), device_bytes.end());
    report.messages_per_device =
        device_messages.empty()
            ? 0
            : *std::max_element(device_messages.begin(),
                                device_messages.end());
  }
};

}  // namespace

std::size_t paper_sequence_length(const ModelSpec& spec) {
  return spec.kind == ModelKind::kImageClassifier ? spec.vit_sequence_length()
                                                  : kPaperTextSequenceLength;
}

LatencyReport simulate_single_device(const ModelSpec& spec, std::size_t n,
                                     const sim::Cluster& cluster) {
  cluster.validate();
  const sim::DeviceSpec& worker = cluster.workers.front();
  const std::size_t f = spec.layer.hidden;

  const LayerWork embed = embedding_work(spec, n);
  const Seconds t_embed = cluster.terminal.compute_time(embed.macs,
                                                        embed.elementwise);
  const Seconds t_up = cluster.link.transfer_time(activation_bytes(n, f));

  Seconds t_compute = 0.0;
  const LayerWork layer = full_layer_work(spec.layer, n);
  for (std::size_t l = 0; l < spec.num_layers; ++l) {
    t_compute += worker.compute_time(layer.macs, layer.elementwise);
  }

  const Seconds t_down = cluster.link.transfer_time(activation_bytes(n, f));
  const LayerWork head = head_work(spec);
  const Seconds t_head =
      cluster.terminal.compute_time(head.macs, head.elementwise);

  LatencyReport report;
  report.devices = 1;
  report.pre_post = t_embed + t_head;
  report.max_device_compute = t_compute;
  report.comm_and_stall = t_up + t_down;
  report.total = t_embed + t_up + t_compute + t_down + t_head;
  report.bytes_sent_per_device = activation_bytes(n, f);
  report.total_bytes_sent = report.bytes_sent_per_device;
  report.messages_per_device = 1;
  return report;
}

LatencyReport simulate_voltage(const ModelSpec& spec, std::size_t n,
                               const sim::Cluster& cluster,
                               const PartitionScheme& scheme,
                               OrderPolicy policy) {
  return simulate_voltage(spec, n, cluster,
                          LayerSchedule::uniform(scheme, spec.num_layers),
                          policy);
}

LatencyReport simulate_voltage(const ModelSpec& spec, std::size_t n,
                               const sim::Cluster& cluster,
                               const LayerSchedule& schedule,
                               OrderPolicy policy) {
  cluster.validate();
  const std::size_t k = cluster.size();
  if (schedule.devices() != k) {
    throw std::invalid_argument(
        "simulate_voltage: schedule/cluster device count mismatch");
  }
  if (schedule.num_layers() != spec.num_layers) {
    throw std::invalid_argument(
        "simulate_voltage: schedule/model layer count mismatch");
  }
  const std::size_t f = spec.layer.hidden;

  const LayerWork embed = embedding_work(spec, n);
  const Seconds t_embed =
      cluster.terminal.compute_time(embed.macs, embed.elementwise);

  // Terminal broadcasts the embedded features to all workers.
  std::vector<SimTime> start =
      sim::sim_broadcast(t_embed, activation_bytes(n, f), k, cluster.link);

  Accumulator acc(k);
  std::vector<std::size_t> partition_bytes(k);
  std::vector<SimTime> ready(k);
  SimTime terminal_has_output = 0.0;
  std::vector<LayerTrace> traces(spec.num_layers);
  for (std::size_t layer = 0; layer < spec.num_layers; ++layer) {
    const std::vector<Range> ranges =
        schedule.scheme_for(layer).ranges(n);
    Seconds slowest_compute = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      partition_bytes[i] = activation_bytes(ranges[i].size(), f);
      const LayerWork work =
          voltage_layer_work(spec.layer, n, ranges[i], policy);
      const Seconds dt =
          cluster.workers[i].compute_time(work.macs, work.elementwise);
      acc.device_compute[i] += dt;
      ready[i] = start[i] + dt;
      slowest_compute = std::max(slowest_compute, dt);
    }
    traces[layer].compute = slowest_compute;
    const SimTime compute_done = *std::max_element(ready.begin(), ready.end());
    const bool last = layer + 1 == spec.num_layers;
    if (last) {
      // Algorithm 2, line 8: partitions go straight to the terminal.
      terminal_has_output =
          sim::sim_gather_to_root(ready, partition_bytes, cluster.link);
      traces[layer].sync = terminal_has_output - compute_done;
      for (std::size_t i = 0; i < k; ++i) {
        acc.device_bytes[i] += partition_bytes[i];
        acc.device_messages[i] += 1;
      }
    } else {
      start = sim::sim_allgather_fullmesh(ready, partition_bytes,
                                          cluster.link);
      traces[layer].sync =
          *std::max_element(start.begin(), start.end()) - compute_done;
      for (std::size_t i = 0; i < k; ++i) {
        acc.device_bytes[i] +=
            static_cast<std::uint64_t>(k - 1) * partition_bytes[i];
        acc.device_messages[i] += k - 1;
      }
    }
  }

  const LayerWork head = head_work(spec);
  const Seconds t_head =
      cluster.terminal.compute_time(head.macs, head.elementwise);

  LatencyReport report;
  report.devices = k;
  report.pre_post = t_embed + t_head;
  report.total = terminal_has_output + t_head;
  report.layer_traces = std::move(traces);
  acc.fill_report(report);
  report.comm_and_stall =
      report.total - report.pre_post - report.max_device_compute;
  return report;
}

LatencyReport simulate_tensor_parallel(const ModelSpec& spec, std::size_t n,
                                       const sim::Cluster& cluster,
                                       AllReduceAlgo algo) {
  cluster.validate();
  const std::size_t k = cluster.size();
  const LayerConfig& cfg = spec.layer;
  const std::size_t f = cfg.hidden;
  if (k > cfg.heads) {
    throw std::invalid_argument(
        "simulate_tensor_parallel: more devices than attention heads");
  }

  // Heads and FFN columns split as evenly as possible (paper: 1/K each).
  std::vector<std::size_t> heads(k), ffn_cols(k);
  for (std::size_t i = 0; i < k; ++i) {
    heads[i] = cfg.heads / k + (i < cfg.heads % k ? 1 : 0);
    ffn_cols[i] = cfg.ffn_dim / k + (i < cfg.ffn_dim % k ? 1 : 0);
  }

  const LayerWork embed = embedding_work(spec, n);
  const Seconds t_embed =
      cluster.terminal.compute_time(embed.macs, embed.elementwise);
  std::vector<SimTime> start =
      sim::sim_broadcast(t_embed, activation_bytes(n, f), k, cluster.link);

  Accumulator acc(k);
  const std::size_t full_activation = activation_bytes(n, f);
  const std::uint64_t nn = n;
  // Per-device ring traffic for one all-reduce of the N x F activation.
  const std::size_t ring_chunk_bytes =
      tensor_wire_bytes((nn * f + k - 1) / k);

  const auto run_phase = [&](std::vector<SimTime>& t,
                             const std::vector<LayerWork>& work) {
    Seconds slowest = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const Seconds dt =
          cluster.workers[i].compute_time(work[i].macs, work[i].elementwise);
      acc.device_compute[i] += dt;
      t[i] += dt;
      slowest = std::max(slowest, dt);
    }
    return slowest;
  };
  const auto run_allreduce = [&](std::vector<SimTime>& t) -> Seconds {
    if (k == 1) return 0.0;
    const SimTime entered = *std::max_element(t.begin(), t.end());
    if (algo == AllReduceAlgo::kRing) {
      t = sim::sim_ring_allreduce(t, full_activation, cluster.link);
      for (std::size_t i = 0; i < k; ++i) {
        acc.device_bytes[i] += 2 * (k - 1) * ring_chunk_bytes;
        acc.device_messages[i] += 2 * (k - 1);
      }
    } else {
      t = sim::sim_star_allreduce(t, full_activation, cluster.link);
      // Ranks 1..K-1 upload once; rank 0 re-broadcasts K-1 copies.
      acc.device_bytes[0] += (k - 1) * full_activation;
      acc.device_messages[0] += k - 1;
      for (std::size_t i = 1; i < k; ++i) {
        acc.device_bytes[i] += full_activation;
        acc.device_messages[i] += 1;
      }
    }
    return *std::max_element(t.begin(), t.end()) - entered;
  };

  // Phase work vectors (identical every layer).
  std::vector<LayerWork> attn_phase(k), ffn_phase(k), post_phase(k);
  for (std::size_t i = 0; i < k; ++i) {
    attn_phase[i].macs =
        heads[i] * gamma_full_attention_head(n, cfg.hidden, cfg.head_dim) +
        nn * (heads[i] * cfg.head_dim) * f;
    attn_phase[i].elementwise = 4 * heads[i] * nn * nn;
    // Replicated bo + residual + LN1, then the FFN shard.
    ffn_phase[i].macs = 2 * nn * f * static_cast<std::uint64_t>(ffn_cols[i]);
    ffn_phase[i].elementwise =
        7 * nn * f +
        nn * ffn_cols[i] *
            (cfg.activation == Activation::kGelu ? 9ULL : 2ULL);
    // Replicated b2 + residual + LN2 after the second all-reduce.
    post_phase[i].elementwise = 7 * nn * f;
  }

  std::vector<SimTime> t = start;
  std::vector<LayerTrace> traces(spec.num_layers);
  for (std::size_t layer = 0; layer < spec.num_layers; ++layer) {
    LayerTrace& trace = traces[layer];
    trace.compute += run_phase(t, attn_phase);
    trace.sync += run_allreduce(t);
    trace.compute += run_phase(t, ffn_phase);
    trace.sync += run_allreduce(t);
    trace.compute += run_phase(t, post_phase);
  }

  // After the final all-reduce every device holds the full output; the
  // first worker ships it to the terminal.
  const SimTime terminal_has_output =
      t[0] + cluster.link.transfer_time(full_activation);
  acc.device_bytes[0] += full_activation;
  acc.device_messages[0] += 1;

  const LayerWork head = head_work(spec);
  const Seconds t_head =
      cluster.terminal.compute_time(head.macs, head.elementwise);

  LatencyReport report;
  report.devices = k;
  report.pre_post = t_embed + t_head;
  report.total = terminal_has_output + t_head;
  report.layer_traces = std::move(traces);
  acc.fill_report(report);
  report.comm_and_stall =
      report.total - report.pre_post - report.max_device_compute;
  return report;
}

}  // namespace voltage
