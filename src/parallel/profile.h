// Per-device work profiles of the three deployment strategies.
//
// A LayerWork is the exact operation count a device executes for one
// transformer layer under a given strategy. MAC counts come from the
// partition/flop_model closed forms; elementwise counts mirror the kernel
// accounting in tensor/ops.cpp term by term, so the test suite can assert
// integer equality between "profile says" and "kernels did". The simulator
// turns these counts into time via sim::DeviceSpec.
#pragma once

#include <cstdint>

#include "partition/order.h"
#include "partition/range.h"
#include "transformer/config.h"

namespace voltage {

struct LayerWork {
  std::uint64_t macs = 0;
  std::uint64_t elementwise = 0;

  LayerWork& operator+=(const LayerWork& other) noexcept {
    macs += other.macs;
    elementwise += other.elementwise;
    return *this;
  }
};

// Work device executes for Algorithm 1 on partition `p` of an N-length
// input (order resolved through `policy` exactly like the implementation).
[[nodiscard]] LayerWork voltage_layer_work(const LayerConfig& config,
                                           std::size_t n, Range p,
                                           OrderPolicy policy);

// Work one tensor-parallel device executes for a layer: `heads_assigned`
// full-sequence attention heads plus a 1/K column/row shard of the FFN,
// plus the replicated position-wise ops after each all-reduce.
[[nodiscard]] LayerWork tp_layer_work(const LayerConfig& config, std::size_t n,
                                      std::size_t heads_assigned,
                                      std::size_t ffn_cols_assigned,
                                      bool include_replicated = true);

// Whole unpartitioned layer on one device.
[[nodiscard]] LayerWork full_layer_work(const LayerConfig& config,
                                        std::size_t n);

// Pre-processing (embedding) work on the terminal device.
[[nodiscard]] LayerWork embedding_work(const ModelSpec& spec, std::size_t n);

// Post-processing (head) work on the terminal device.
[[nodiscard]] LayerWork head_work(const ModelSpec& spec);

}  // namespace voltage
