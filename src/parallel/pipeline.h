// Pipeline-parallelism baseline (paper §V-C / PipeEdge-style): the L layers
// are split into K contiguous stages, one stage per device; activations flow
// stage to stage.
//
// The paper argues (without numbers) that pipelining optimizes THROUGHPUT
// given enough concurrent microbatches but cannot improve the LATENCY of an
// individual batch-1 request — the request still traverses every layer
// sequentially, plus K-1 inter-stage transfers. This model quantifies both
// sides of that argument so the claim is reproducible.
#pragma once

#include <cstddef>

#include "net/link.h"
#include "sim/cluster.h"
#include "transformer/config.h"

namespace voltage {

struct PipelineReport {
  // End-to-end latency of ONE batch-1 request through the pipeline.
  Seconds request_latency = 0.0;
  // Steady-state requests/second with a saturated stream of single-request
  // microbatches: 1 / (slowest stage's compute + its outbound transfer).
  double throughput_rps = 0.0;
  Seconds bottleneck_stage = 0.0;
  std::size_t stages = 0;
};

// Layers are assigned to stages in contiguous blocks, sizes as even as
// possible (the standard depth partition).
[[nodiscard]] PipelineReport simulate_pipeline(const ModelSpec& spec,
                                               std::size_t n,
                                               const sim::Cluster& cluster);

// Reference throughput of one device running the whole model back to back.
[[nodiscard]] double single_device_throughput(const ModelSpec& spec,
                                              std::size_t n,
                                              const sim::Cluster& cluster);

}  // namespace voltage
