#include "parallel/pipeline.h"

#include <algorithm>
#include <stdexcept>

#include "parallel/profile.h"
#include "tensor/serialize.h"

namespace voltage {

PipelineReport simulate_pipeline(const ModelSpec& spec, std::size_t n,
                                 const sim::Cluster& cluster) {
  cluster.validate();
  const std::size_t k = std::min(cluster.size(), spec.num_layers);
  const std::size_t f = spec.layer.hidden;
  const std::size_t activation = tensor_wire_bytes(n * f);
  const LayerWork layer = full_layer_work(spec.layer, n);

  PipelineReport report;
  report.stages = k;

  // Request latency: embed -> transfer to stage 0 -> (stage compute ->
  // transfer)^K -> head on the terminal. Batch 1 means no overlap at all.
  const LayerWork embed = embedding_work(spec, n);
  const LayerWork head = head_work(spec);
  Seconds latency =
      cluster.terminal.compute_time(embed.macs, embed.elementwise) +
      cluster.link.transfer_time(activation);
  Seconds bottleneck = 0.0;
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t layers_here =
        spec.num_layers / k + (s < spec.num_layers % k ? 1 : 0);
    const Seconds compute =
        static_cast<double>(layers_here) *
        cluster.workers[s].compute_time(layer.macs, layer.elementwise);
    // Every stage forwards the activation (the last one to the terminal).
    const Seconds hop = cluster.link.transfer_time(activation);
    latency += compute + hop;
    bottleneck = std::max(bottleneck, compute + hop);
  }
  latency += cluster.terminal.compute_time(head.macs, head.elementwise);

  report.request_latency = latency;
  report.bottleneck_stage = bottleneck;
  report.throughput_rps = 1.0 / bottleneck;
  return report;
}

double single_device_throughput(const ModelSpec& spec, std::size_t n,
                                const sim::Cluster& cluster) {
  cluster.validate();
  const LayerWork layer = full_layer_work(spec.layer, n);
  const Seconds per_request =
      static_cast<double>(spec.num_layers) *
      cluster.workers.front().compute_time(layer.macs, layer.elementwise);
  return 1.0 / per_request;
}

}  // namespace voltage
