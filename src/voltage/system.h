// Voltage public API façade.
//
// One object that owns a model and a partition scheme and offers:
//   - infer():            real distributed inference (threaded devices,
//                         byte-accurate fabric) — Algorithm 2;
//   - estimate_latency(): what this deployment would cost on a described
//                         edge cluster (discrete-event simulation);
//   - traffic():          measured wire volume so far.
//
// Quick start:
//   auto model  = voltage::make_model(voltage::mini_bert_spec());
//   voltage::System system(std::move(model),
//                          {.scheme = voltage::PartitionScheme::even(4)});
//   auto logits = system.infer(tokens);
#pragma once

#include <optional>
#include <span>

#include "parallel/latency_model.h"
#include "parallel/pipeline.h"
#include "partition/order.h"
#include "partition/scheme.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/tensor_parallel_runtime.h"
#include "runtime/voltage_runtime.h"
#include "sim/cluster.h"
#include "transformer/model.h"
#include "transformer/zoo.h"

namespace voltage {

// Which distribution strategy serves the requests. All three produce the
// same logits; they differ in communication pattern and latency (see the
// bench/ comparisons).
enum class Strategy : std::uint8_t {
  kVoltage,         // position partition, one all-gather per layer (default)
  kTensorParallel,  // Megatron-style weight split, two all-reduces per layer
  kPipeline,        // contiguous layer stages
};

struct SystemOptions {
  PartitionScheme scheme = PartitionScheme::even(1);
  OrderPolicy policy = OrderPolicy::kAdaptive;
  Strategy strategy = Strategy::kVoltage;
  TransportKind transport = TransportKind::kInMemory;
};

class System {
 public:
  System(TransformerModel model, SystemOptions options)
      : model_(std::move(model)), options_(std::move(options)) {
    const std::size_t devices = options_.scheme.devices();
    switch (options_.strategy) {
      case Strategy::kVoltage:
        voltage_.emplace(model_, options_.scheme, options_.policy,
                         options_.transport);
        break;
      case Strategy::kTensorParallel:
        tensor_parallel_.emplace(model_, devices, options_.transport);
        break;
      case Strategy::kPipeline:
        pipeline_.emplace(model_, devices, options_.transport);
        break;
    }
  }

  [[nodiscard]] Tensor infer(std::span<const TokenId> tokens) {
    if (voltage_) return voltage_->infer(tokens);
    if (tensor_parallel_) return tensor_parallel_->infer(tokens);
    return pipeline_->infer(tokens);
  }
  [[nodiscard]] Tensor infer(const Image& image) {
    if (voltage_) return voltage_->infer(image);
    if (tensor_parallel_) return tensor_parallel_->infer(image);
    return pipeline_->infer(image);
  }

  // Predicted end-to-end latency of this deployment (same strategy and
  // scheme) on `cluster` for an input of length `n` (0 = the paper's
  // workload length for this model).
  [[nodiscard]] LatencyReport estimate_latency(const sim::Cluster& cluster,
                                               std::size_t n = 0) const {
    const std::size_t seq = n == 0 ? paper_sequence_length(model_.spec()) : n;
    switch (options_.strategy) {
      case Strategy::kTensorParallel:
        return simulate_tensor_parallel(model_.spec(), seq, cluster);
      case Strategy::kPipeline: {
        const PipelineReport pipe =
            simulate_pipeline(model_.spec(), seq, cluster);
        LatencyReport report;
        report.total = pipe.request_latency;
        report.devices = pipe.stages;
        return report;
      }
      case Strategy::kVoltage:
        break;
    }
    return simulate_voltage(model_.spec(), seq, cluster, options_.scheme,
                            options_.policy);
  }

  [[nodiscard]] const TransformerModel& model() const noexcept {
    return model_;
  }
  [[nodiscard]] const SystemOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] TrafficStats traffic() const {
    if (voltage_) return voltage_->fabric().total_stats();
    if (tensor_parallel_) return tensor_parallel_->fabric().total_stats();
    return pipeline_->fabric().total_stats();
  }

 private:
  TransformerModel model_;
  SystemOptions options_;
  // Exactly one engaged, per options_.strategy.
  std::optional<VoltageRuntime> voltage_;
  std::optional<TensorParallelRuntime> tensor_parallel_;
  std::optional<PipelineRuntime> pipeline_;
};

}  // namespace voltage
