#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.h"

namespace voltage {

namespace {

constexpr Seconds to_seconds(obs::Micros us) {
  return static_cast<Seconds>(us) / 1e6;
}

LatencyStats summarize(std::vector<Seconds> samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const Seconds s : samples) sum += s;
  stats.mean = sum / static_cast<double>(samples.size());
  const auto pct = [&](double q) {
    return samples[static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1))];
  };
  stats.p50 = pct(0.5);
  stats.p95 = pct(0.95);
  stats.max = samples.back();
  return stats;
}

}  // namespace

InferenceServer::InferenceServer(const TransformerModel& model,
                                 Options options)
    : model_(model),
      runtime_(model, std::move(options.scheme), options.policy,
               options.transport),
      tracer_(options.tracer),
      metrics_(options.metrics) {
  std::size_t per_device = options.device_intra_op_threads;
  if (per_device == 0) {
    per_device = std::max<std::size_t>(
        1, intra_op_threads() / (runtime_.terminal_id() + 1));
  }
  runtime_.set_intra_op_threads(per_device);
  runtime_.set_tracer(tracer_);
  if (metrics_ != nullptr) runtime_.set_metrics(metrics_);
  if (tracer_ != nullptr) {
    tracer_->set_track_name(obs::kServeTrack, "server");
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceServer::~InferenceServer() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<Tensor> InferenceServer::enqueue(Job job) {
  std::future<Tensor> future = job.result.get_future();
  {
    const std::lock_guard lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("InferenceServer: shut down");
    }
    job.id = next_request_id_++;
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
  return future;
}

std::future<Tensor> InferenceServer::submit(std::vector<TokenId> tokens) {
  return enqueue(Job{.input = std::move(tokens),
                     .result = {},
                     .id = 0,
                     .arrival_us = obs::now_us()});
}

std::future<Tensor> InferenceServer::submit(Image image) {
  return enqueue(Job{.input = std::move(image),
                     .result = {},
                     .id = 0,
                     .arrival_us = obs::now_us()});
}

void InferenceServer::shutdown() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  wake_.notify_all();
}

void InferenceServer::dispatch_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const obs::Micros dispatched_us = obs::now_us();
    const obs::Micros wait_us = dispatched_us - job.arrival_us;
    if (tracer_ != nullptr) {
      // Retroactive span: the wait started at submit time on this track.
      tracer_->record(
          obs::TraceEvent{.name = "queue_wait",
                          .category = "serve",
                          .track = obs::kServeTrack,
                          .start_us = job.arrival_us,
                          .duration_us = wait_us,
                          .request = static_cast<std::int64_t>(job.id),
                          .tag = {}});
    }
    try {
      Tensor logits(0, 0);
      {
        obs::TraceSpan span(tracer_, "service", "serve", obs::kServeTrack);
        span.request(static_cast<std::int64_t>(job.id));
        logits = std::visit(
            [this](const auto& input) {
              if constexpr (std::is_same_v<std::decay_t<decltype(input)>,
                                           Image>) {
                return runtime_.infer(input);
              } else {
                return runtime_.infer(
                    std::span<const TokenId>(input.data(), input.size()));
              }
            },
            job.input);
      }
      const obs::Micros done_us = obs::now_us();
      const Seconds wait = to_seconds(wait_us);
      const Seconds service = to_seconds(done_us - dispatched_us);
      const Seconds sojourn = to_seconds(done_us - job.arrival_us);
      {
        const std::lock_guard lock(mutex_);
        waits_.push_back(wait);
        services_.push_back(service);
        sojourns_.push_back(sojourn);
      }
      if (metrics_ != nullptr) {
        metrics_->counter("server.requests_completed").add(1);
        metrics_->histogram("server.queue_wait_seconds").record(wait);
        metrics_->histogram("server.service_seconds").record(service);
        metrics_->histogram("server.sojourn_seconds").record(sojourn);
      }
      job.result.set_value(std::move(logits));
    } catch (...) {
      if (metrics_ != nullptr) {
        metrics_->counter("server.requests_failed").add(1);
      }
      job.result.set_exception(std::current_exception());
    }
  }
}

ServerStats InferenceServer::stats() const {
  std::vector<Seconds> waits;
  std::vector<Seconds> services;
  std::vector<Seconds> sojourns;
  {
    const std::lock_guard lock(mutex_);
    waits = waits_;
    services = services_;
    sojourns = sojourns_;
  }
  ServerStats stats;
  stats.completed = sojourns.size();
  if (sojourns.empty()) return stats;
  const LatencyStats total = summarize(std::move(sojourns));
  stats.mean = total.mean;
  stats.p50 = total.p50;
  stats.p95 = total.p95;
  stats.max = total.max;
  stats.queue_wait = summarize(std::move(waits));
  stats.service = summarize(std::move(services));
  return stats;
}

std::size_t InferenceServer::queue_depth() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace voltage
