#include "serve/server.h"

#include <algorithm>
#include <stdexcept>

namespace voltage {

InferenceServer::InferenceServer(const TransformerModel& model,
                                 Options options)
    : model_(model),
      runtime_(model, std::move(options.scheme), options.policy,
               options.transport) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceServer::~InferenceServer() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<Tensor> InferenceServer::enqueue(Job job) {
  std::future<Tensor> future = job.result.get_future();
  {
    const std::lock_guard lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("InferenceServer: shut down");
    }
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
  return future;
}

std::future<Tensor> InferenceServer::submit(std::vector<TokenId> tokens) {
  return enqueue(Job{.input = std::move(tokens),
                     .result = {},
                     .arrival = std::chrono::steady_clock::now()});
}

std::future<Tensor> InferenceServer::submit(Image image) {
  return enqueue(Job{.input = std::move(image),
                     .result = {},
                     .arrival = std::chrono::steady_clock::now()});
}

void InferenceServer::shutdown() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  wake_.notify_all();
}

void InferenceServer::dispatch_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      Tensor logits = std::visit(
          [this](const auto& input) {
            if constexpr (std::is_same_v<std::decay_t<decltype(input)>,
                                         Image>) {
              return runtime_.infer(input);
            } else {
              return runtime_.infer(
                  std::span<const TokenId>(input.data(), input.size()));
            }
          },
          job.input);
      const Seconds sojourn =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        job.arrival)
              .count();
      {
        const std::lock_guard lock(mutex_);
        sojourns_.push_back(sojourn);
      }
      job.result.set_value(std::move(logits));
    } catch (...) {
      job.result.set_exception(std::current_exception());
    }
  }
}

ServerStats InferenceServer::stats() const {
  std::vector<Seconds> sojourns;
  {
    const std::lock_guard lock(mutex_);
    sojourns = sojourns_;
  }
  ServerStats stats;
  stats.completed = sojourns.size();
  if (sojourns.empty()) return stats;
  std::sort(sojourns.begin(), sojourns.end());
  double sum = 0.0;
  for (const Seconds s : sojourns) sum += s;
  stats.mean = sum / static_cast<double>(sojourns.size());
  const auto pct = [&](double q) {
    return sojourns[static_cast<std::size_t>(
        q * static_cast<double>(sojourns.size() - 1))];
  };
  stats.p50 = pct(0.5);
  stats.p95 = pct(0.95);
  stats.max = sojourns.back();
  return stats;
}

std::size_t InferenceServer::queue_depth() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace voltage
