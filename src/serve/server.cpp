#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.h"
#include "obs/percentile.h"
#include "tensor/ops.h"

namespace voltage {

namespace {

constexpr Seconds to_seconds(obs::Micros us) {
  return static_cast<Seconds>(us) / 1e6;
}

LatencyStats summarize(std::vector<Seconds> samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const Seconds s : samples) sum += s;
  stats.mean = sum / static_cast<double>(samples.size());
  stats.p50 = obs::nearest_rank(samples, 0.5);
  stats.p95 = obs::nearest_rank(samples, 0.95);
  stats.p99 = obs::nearest_rank(samples, 0.99);
  stats.max = samples.back();
  return stats;
}

}  // namespace

InferenceServer::InferenceServer(const TransformerModel& model,
                                 Options options)
    : model_(model),
      options_(std::move(options)),
      runtime_(make_runtime()),
      tracer_(options_.tracer),
      metrics_(options_.metrics),
      telemetry_(options_.telemetry),
      flight_recorder_(options_.flight_recorder) {
  if (tracer_ != nullptr) {
    tracer_->set_track_name(obs::kServeTrack, "server");
  }
  if (telemetry_ != nullptr) {
    telemetry_->register_rate("tokens", [this] {
      return static_cast<double>(
          tokens_generated_.load(std::memory_order_relaxed));
    });
    telemetry_->register_rate("requests", [this] {
      return static_cast<double>(
          requests_completed_.load(std::memory_order_relaxed));
    });
    if (metrics_ != nullptr) {
      // Wire volume comes from the metrics counter rather than the live
      // transport: the dispatcher swaps runtimes after poisoning, and the
      // counter survives (and sums across) those swaps.
      obs::MetricsRegistry* const metrics = metrics_;
      telemetry_->register_rate("wire_bytes", [metrics] {
        return static_cast<double>(
            metrics->counter("transport.bytes_sent").value());
      });
    }
    telemetry_->register_gauge("server.queue_depth", [this] {
      return static_cast<double>(queue_depth());
    });
    telemetry_->register_gauge("server.batch_occupancy", [this] {
      return static_cast<double>(batch_occupancy());
    });
    telemetry_->register_gauge("server.spec_accept_rate", [this] {
      const double accepted = static_cast<double>(
          spec_accepted_.load(std::memory_order_relaxed));
      const double rejected = static_cast<double>(
          spec_rejected_.load(std::memory_order_relaxed));
      const double drafted = accepted + rejected;
      return drafted > 0.0 ? accepted / drafted : 0.0;
    });
    telemetry_thread_ = std::thread([this] { telemetry_loop(); });
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

std::unique_ptr<VoltageRuntime> InferenceServer::make_runtime() const {
  auto runtime = std::make_unique<VoltageRuntime>(
      model_, options_.scheme, options_.policy, options_.transport);
  std::size_t per_device = options_.device_intra_op_threads;
  if (per_device == 0) {
    per_device = std::max<std::size_t>(
        1, intra_op_threads() / (runtime->terminal_id() + 1));
  }
  runtime->set_intra_op_threads(per_device);
  runtime->set_precision(options_.precision);
  runtime->set_recv_timeout(options_.request_deadline);
  runtime->set_tracer(options_.tracer);
  if (options_.metrics != nullptr) runtime->set_metrics(options_.metrics);
  runtime->set_telemetry(options_.telemetry);
  runtime->set_flight_recorder(options_.flight_recorder);
  return runtime;
}

std::unique_ptr<DistributedDecoder> InferenceServer::make_decoder() const {
  const std::size_t endpoints = options_.scheme.devices() + 1;
  std::unique_ptr<Transport> fabric =
      options_.decoder_transport_factory
          ? options_.decoder_transport_factory(endpoints)
          : make_transport(options_.transport, endpoints);
  auto decoder = std::make_unique<DistributedDecoder>(
      model_, options_.scheme, options_.policy, std::move(fabric));
  std::size_t per_device = options_.device_intra_op_threads;
  if (per_device == 0) {
    per_device = std::max<std::size_t>(
        1, intra_op_threads() / (decoder->terminal_id() + 1));
  }
  decoder->set_intra_op_threads(per_device);
  decoder->set_precision(options_.precision);
  decoder->set_recv_timeout(options_.request_deadline);
  decoder->set_kv_block_limit(options_.kv_block_limit);
  // Metrics before tracer: set_tracer broadcasts the refresh handshake, and
  // its bytes must land on the transport counters the spans are checked
  // against.
  if (options_.metrics != nullptr) decoder->set_metrics(options_.metrics);
  decoder->set_tracer(options_.tracer);
  decoder->set_telemetry(options_.telemetry);
  decoder->set_flight_recorder(options_.flight_recorder);
  return decoder;
}

void InferenceServer::rebuild_runtime_if_poisoned() {
  if (!runtime_->fabric().closed()) return;
  // A poisoned transport never recovers (that is what makes poisoning a
  // sound unblocking primitive), so the dispatcher swaps in a fresh runtime
  // rather than failing every later request with the stale close reason.
  // The installed partition executor survives the swap — only the mesh is
  // replaced, not the kernel.
  PartitionExecutor executor = runtime_->partition_executor();
  std::unique_ptr<VoltageRuntime> fresh = make_runtime();
  fresh->set_partition_executor(std::move(executor));
  runtime_ = std::move(fresh);
  {
    const std::lock_guard lock(mutex_);
    runtime_rebuilds_ += 1;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("server.runtime_rebuilds").add(1);
  }
}

InferenceServer::~InferenceServer() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    const std::lock_guard lock(telemetry_mutex_);
    telemetry_stop_ = true;
  }
  telemetry_wake_.notify_all();
  if (telemetry_thread_.joinable()) telemetry_thread_.join();
  if (telemetry_ != nullptr) {
    // The registered callables capture this server; the hub may outlive it
    // and be sampled again.
    telemetry_->unregister("tokens");
    telemetry_->unregister("requests");
    telemetry_->unregister("wire_bytes");
    telemetry_->unregister("server.queue_depth");
    telemetry_->unregister("server.batch_occupancy");
    telemetry_->unregister("server.spec_accept_rate");
  }
}

void InferenceServer::enqueue(Job job) {
  {
    const std::lock_guard lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("InferenceServer: shut down");
    }
    job.id = next_request_id_++;
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

std::future<Tensor> InferenceServer::submit(std::vector<TokenId> tokens) {
  Job job{.input = std::move(tokens),
          .result = {},
          .generated = {},
          .id = 0,
          .arrival_us = obs::now_us()};
  std::future<Tensor> future = job.result.get_future();
  enqueue(std::move(job));
  return future;
}

std::future<Tensor> InferenceServer::submit(Image image) {
  Job job{.input = std::move(image),
          .result = {},
          .generated = {},
          .id = 0,
          .arrival_us = obs::now_us()};
  std::future<Tensor> future = job.result.get_future();
  enqueue(std::move(job));
  return future;
}

std::future<std::vector<TokenId>> InferenceServer::submit_generate(
    std::vector<TokenId> prompt, std::size_t new_tokens) {
  if (model_.spec().kind != ModelKind::kCausalLm) {
    throw std::invalid_argument("InferenceServer: generation needs a causal LM");
  }
  Job job{.input = GenerateRequest{.prompt = std::move(prompt),
                                   .new_tokens = new_tokens},
          .result = {},
          .generated = {},
          .id = 0,
          .arrival_us = obs::now_us()};
  std::future<std::vector<TokenId>> future = job.generated.get_future();
  enqueue(std::move(job));
  return future;
}

void InferenceServer::shutdown() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  wake_.notify_all();
}

// ---------------------------------------------------------------------------
// The continuous-batching scheduler.
//
// Each iteration: (1) drain the queue — logits/image jobs pop
// unconditionally, generations admit while the batch has room (FIFO among
// themselves); (2) serve the inline jobs; (3) prefill admitted generations
// into decoder slots; (4) preempt anything past its deadline; (5) advance
// the whole batch by one token with a single step_batch call; (6) retire
// completed sequences and free their slots. The dispatcher sleeps only when
// the batch is empty and no work is queued, so requests join and leave at
// token granularity.

void InferenceServer::dispatch_loop() {
  // The dispatcher is the terminal device of every runtime/decoder it
  // drives: publish the tracer so transport sends from this thread emit
  // flow events even outside the runtimes' own scopes.
  const obs::ThreadTracerScope tracer_scope(tracer_);
  const obs::ThreadTrackScope track_scope(obs::kServeTrack);
  std::vector<ActiveRequest> batch;
  for (;;) {
    std::vector<Job> inline_jobs;
    std::vector<Job> admissions;
    {
      std::unique_lock lock(mutex_);
      if (batch.empty()) {
        wake_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      }
      if (queue_.empty() && batch.empty()) {
        if (stopping_) return;
        continue;
      }
      const std::size_t cap = std::max<std::size_t>(1, options_.max_batch);
      std::deque<Job> waiting;  // generations the batch has no room for
      while (!queue_.empty()) {
        Job job = std::move(queue_.front());
        queue_.pop_front();
        if (std::holds_alternative<GenerateRequest>(job.input)) {
          if (batch.size() + admissions.size() < cap) {
            admissions.push_back(std::move(job));
          } else {
            waiting.push_back(std::move(job));
          }
        } else {
          inline_jobs.push_back(std::move(job));
        }
      }
      queue_ = std::move(waiting);
    }
    if (flight_recorder_ != nullptr) {
      // Per-iteration ring: a poisoning dump shows the wire history of the
      // current batch iteration, not the whole server lifetime.
      flight_recorder_->clear();
    }
    // Short inline requests are served between decode iterations — they
    // never wait for the batch to drain.
    for (Job& job : inline_jobs) serve_inline(std::move(job));
    for (Job& job : admissions) admit_generate(std::move(job), batch);

    if (!batch.empty()) {
      // Deadline preemption before spending a step on a doomed request:
      // the preempted future fails, its KV blocks free, batch-mates are
      // untouched.
      const obs::Micros now = obs::now_us();
      for (auto it = batch.begin(); it != batch.end();) {
        if (it->deadline_us != 0 && now >= it->deadline_us) {
          {
            const std::lock_guard lock(mutex_);
            preempted_ += 1;
          }
          fail_generate(*it,
                        std::make_exception_ptr(RecvTimeoutError(
                            "InferenceServer: request deadline exceeded "
                            "while decoding")),
                        /*release=*/true);
          it = batch.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!batch.empty()) {
      if (metrics_ != nullptr) {
        metrics_->histogram("server.batch_occupancy")
            .record(static_cast<double>(batch.size()));
      }
      {
        const std::lock_guard lock(mutex_);
        batch_peak_ = std::max(batch_peak_, batch.size());
      }
    }
    if (!batch.empty() && !options_.drafter_factory) {
      std::vector<SlotToken> lanes;
      lanes.reserve(batch.size());
      for (const ActiveRequest& active : batch) {
        lanes.push_back(SlotToken{.slot = active.slot, .token = active.next});
      }
      Tensor logits(0, 0);
      try {
        logits = decoder_->step_batch(
            std::span<const SlotToken>(lanes.data(), lanes.size()));
      } catch (...) {
        // The mesh died mid-step: every in-flight sequence lost its KV
        // state, so every in-flight future fails with the root cause.
        // Queued requests are unaffected — the next admission builds a
        // fresh decoder.
        fail_batch(batch, std::current_exception());
      }
      if (!batch.empty()) {
        std::vector<ActiveRequest> still;
        still.reserve(batch.size());
        for (std::size_t r = 0; r < batch.size(); ++r) {
          ActiveRequest& active = batch[r];
          active.next = static_cast<TokenId>(argmax_row(logits, r));
          active.generated.push_back(active.next);
          tokens_generated_.fetch_add(1, std::memory_order_relaxed);
          if (active.generated.size() >= active.target) {
            complete_generate(active);
          } else {
            still.push_back(std::move(active));
          }
        }
        batch = std::move(still);
      }
    } else if (!batch.empty()) {
      // Speculative iteration: each lane drafts a window sized by its
      // controller (never past its remaining token budget) and the whole
      // batch verifies in one step_speculative round. A lane whose drafter
      // stays silent rides along as a plain single-token step.
      std::vector<std::vector<TokenId>> drafts;
      drafts.reserve(batch.size());
      std::vector<SlotWindow> lanes;
      lanes.reserve(batch.size());
      for (ActiveRequest& active : batch) {
        const std::size_t remaining = active.target - active.generated.size();
        const std::size_t want =
            std::min(active.spec.window(), remaining - 1);
        std::vector<TokenId> guess;
        if (want > 0 && active.drafter != nullptr) {
          guess = active.drafter->draft(want);
          if (guess.size() > want) guess.resize(want);
        }
        drafts.push_back(std::move(guess));
        lanes.push_back(SlotWindow{
            .slot = active.slot,
            .token = active.next,
            .drafts = std::span<const TokenId>(drafts.back().data(),
                                               drafts.back().size())});
      }
      std::vector<LaneCommit> commits;
      try {
        commits = decoder_->step_speculative(
            std::span<const SlotWindow>(lanes.data(), lanes.size()));
      } catch (...) {
        fail_batch(batch, std::current_exception());
      }
      if (!batch.empty()) {
        std::vector<ActiveRequest> still;
        still.reserve(batch.size());
        for (std::size_t r = 0; r < batch.size(); ++r) {
          ActiveRequest& active = batch[r];
          const LaneCommit& commit = commits[r];
          active.generated.insert(active.generated.end(),
                                  commit.tokens.begin(), commit.tokens.end());
          active.next = commit.tokens.back();
          tokens_generated_.fetch_add(commit.tokens.size(),
                                      std::memory_order_relaxed);
          const std::size_t rejected = commit.drafted - commit.accepted;
          spec_accepted_.fetch_add(commit.accepted,
                                   std::memory_order_relaxed);
          spec_rejected_.fetch_add(rejected, std::memory_order_relaxed);
          if (metrics_ != nullptr && commit.drafted > 0) {
            metrics_->counter("server.spec_accepted").add(commit.accepted);
            metrics_->counter("server.spec_rejected").add(rejected);
          }
          if (active.drafter != nullptr) {
            active.drafter->observe(std::span<const TokenId>(
                commit.tokens.data(), commit.tokens.size()));
          }
          active.spec.update(commit.accepted, commit.drafted);
          if (active.generated.size() >= active.target) {
            complete_generate(active);
          } else {
            still.push_back(std::move(active));
          }
        }
        batch = std::move(still);
      }
    }
    batch_size_.store(batch.size(), std::memory_order_relaxed);
  }
}

void InferenceServer::serve_inline(Job job) {
  // One causal trace id per request: every span and message of the whole
  // service — all K devices — shares it.
  const obs::TraceIdScope request_trace(obs::next_trace_id());
  const obs::Micros dispatched_us = obs::now_us();
  const obs::Micros wait_us = dispatched_us - job.arrival_us;
  if (tracer_ != nullptr) {
    // Retroactive span: the wait started at submit time on this track.
    tracer_->record(
        obs::TraceEvent{.name = "queue_wait",
                        .category = "serve",
                        .track = obs::kServeTrack,
                        .start_us = job.arrival_us,
                        .duration_us = wait_us,
                        .request = static_cast<std::int64_t>(job.id),
                        .trace = static_cast<std::int64_t>(
                            obs::thread_trace_id()),
                        .tag = {}});
  }
  try {
    Tensor logits(0, 0);
    {
      obs::TraceSpan span(tracer_, "service", "serve", obs::kServeTrack);
      span.request(static_cast<std::int64_t>(job.id));
      logits = std::visit(
          [this](const auto& input) {
            if constexpr (std::is_same_v<std::decay_t<decltype(input)>,
                                         Image>) {
              return runtime_->infer(input);
            } else if constexpr (std::is_same_v<std::decay_t<decltype(input)>,
                                                std::vector<TokenId>>) {
              return runtime_->infer(
                  std::span<const TokenId>(input.data(), input.size()));
            } else {
              return Tensor(0, 0);  // unreachable: generates never come here
            }
          },
          job.input);
    }
    const obs::Micros done_us = obs::now_us();
    const Seconds wait = to_seconds(wait_us);
    const Seconds service = to_seconds(done_us - dispatched_us);
    const Seconds sojourn = to_seconds(done_us - job.arrival_us);
    {
      const std::lock_guard lock(mutex_);
      waits_.push_back(wait);
      services_.push_back(service);
      sojourns_.push_back(sojourn);
    }
    if (metrics_ != nullptr) {
      metrics_->counter("server.requests_completed").add(1);
      metrics_->histogram("server.queue_wait_seconds").record(wait);
      metrics_->histogram("server.service_seconds").record(service);
      metrics_->histogram("server.sojourn_seconds").record(sojourn);
    }
    requests_completed_.fetch_add(1, std::memory_order_relaxed);
    job.result.set_value(std::move(logits));
  } catch (...) {
    {
      const std::lock_guard lock(mutex_);
      failed_ += 1;
    }
    if (metrics_ != nullptr) {
      metrics_->counter("server.requests_failed").add(1);
    }
    job.result.set_exception(std::current_exception());
    // A failure that poisoned the mesh must not doom every later request:
    // swap in a fresh runtime so the dispatcher keeps serving.
    rebuild_runtime_if_poisoned();
  }
}

bool InferenceServer::admit_generate(Job job,
                                     std::vector<ActiveRequest>& batch) {
  const obs::Micros admitted_us = obs::now_us();
  const obs::Micros wait_us = admitted_us - job.arrival_us;
  if (tracer_ != nullptr) {
    tracer_->record(
        obs::TraceEvent{.name = "queue_wait",
                        .category = "serve",
                        .track = obs::kServeTrack,
                        .start_us = job.arrival_us,
                        .duration_us = wait_us,
                        .request = static_cast<std::int64_t>(job.id),
                        .trace = static_cast<std::int64_t>(
                            obs::thread_trace_id()),
                        .tag = {}});
  }
  ActiveRequest active;
  active.target = std::get<GenerateRequest>(job.input).new_tokens;
  active.admitted_us = admitted_us;
  active.deadline_us =
      options_.request_deadline > 0.0
          ? job.arrival_us +
                static_cast<obs::Micros>(options_.request_deadline * 1e6)
          : 0;
  active.job = std::move(job);
  if (active.deadline_us != 0 && admitted_us >= active.deadline_us) {
    // Expired while queued: fail without spending a prefill on it.
    {
      const std::lock_guard lock(mutex_);
      preempted_ += 1;
    }
    fail_generate(active,
                  std::make_exception_ptr(RecvTimeoutError(
                      "InferenceServer: request deadline exceeded in queue")),
                  /*release=*/false);
    return false;
  }
  try {
    if (decoder_ == nullptr) decoder_ = make_decoder();
    const GenerateRequest& req = std::get<GenerateRequest>(active.job.input);
    // The prefill runs under the request's own trace id; batched decode
    // steps serve several requests at once and carry their own per-step id.
    const obs::TraceIdScope request_trace(obs::next_trace_id());
    DistributedDecoder::PrimedSlot primed = decoder_->prime_slot(
        std::span<const TokenId>(req.prompt.data(), req.prompt.size()));
    active.slot = primed.slot;
    if (active.target == 0) {
      complete_generate(active);
      return false;
    }
    active.next = static_cast<TokenId>(argmax_row(primed.logits, 0));
    active.generated.push_back(active.next);
    active.first_token_us = obs::now_us();
    tokens_generated_.fetch_add(1, std::memory_order_relaxed);
    if (active.generated.size() >= active.target) {
      complete_generate(active);
      return false;
    }
    if (options_.drafter_factory) {
      active.drafter = options_.drafter_factory();
      active.spec = SpeculationController(options_.max_draft_tokens);
      active.drafter->begin(
          std::span<const TokenId>(req.prompt.data(), req.prompt.size()));
      active.drafter->observe(std::span<const TokenId>(&active.next, 1));
    }
    batch.push_back(std::move(active));
    return true;
  } catch (...) {
    // Pre-mesh validation errors (bad token, prompt exceeds the window)
    // leave the decoder and its other slots fully serviceable; only a
    // poisoned fabric means the in-flight batch died with this prefill.
    const bool mesh_dead =
        decoder_ != nullptr && decoder_->fabric().closed();
    fail_generate(active, std::current_exception(), /*release=*/false);
    if (mesh_dead) fail_batch(batch, std::current_exception());
    return false;
  }
}

void InferenceServer::complete_generate(ActiveRequest& active) {
  const obs::Micros done_us = obs::now_us();
  const Seconds wait = to_seconds(active.admitted_us - active.job.arrival_us);
  const Seconds service = to_seconds(done_us - active.admitted_us);
  const Seconds sojourn = to_seconds(done_us - active.job.arrival_us);
  const Seconds ttft =
      active.first_token_us != 0
          ? to_seconds(active.first_token_us - active.job.arrival_us)
          : 0.0;
  {
    const std::lock_guard lock(mutex_);
    waits_.push_back(wait);
    services_.push_back(service);
    sojourns_.push_back(sojourn);
    if (active.first_token_us != 0) ttfts_.push_back(ttft);
    if (active.generated.size() > 1) {
      // Decode-phase inter-token gap: first token lands with the prefill,
      // the remaining n-1 ride batched steps.
      token_gaps_.push_back(
          to_seconds(done_us - active.first_token_us) /
          static_cast<double>(active.generated.size() - 1));
    }
  }
  if (metrics_ != nullptr) {
    metrics_->counter("server.requests_completed").add(1);
    metrics_->histogram("server.queue_wait_seconds").record(wait);
    metrics_->histogram("server.service_seconds").record(service);
    metrics_->histogram("server.sojourn_seconds").record(sojourn);
    if (active.first_token_us != 0) {
      metrics_->histogram("server.ttft_seconds").record(ttft);
    }
  }
  requests_completed_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_ != nullptr) {
    // Retroactive service span: the request was in service from admission
    // to completion, interleaved with its batch-mates.
    tracer_->record(
        obs::TraceEvent{.name = "service",
                        .category = "serve",
                        .track = obs::kServeTrack,
                        .start_us = active.admitted_us,
                        .duration_us = done_us - active.admitted_us,
                        .request = static_cast<std::int64_t>(active.job.id),
                        .trace = static_cast<std::int64_t>(
                            obs::thread_trace_id()),
                        .tag = {}});
  }
  active.job.generated.set_value(std::move(active.generated));
  // Return the slot's KV blocks to the pool. If the mesh died under the
  // release broadcast the request itself still succeeded; drop the decoder
  // so the next admission builds a fresh one.
  if (decoder_ != nullptr) {
    try {
      decoder_->release_slot(active.slot);
    } catch (...) {
      decoder_.reset();
      if (metrics_ != nullptr) {
        metrics_->counter("server.decoder_rebuilds").add(1);
      }
    }
  }
}

void InferenceServer::fail_generate(ActiveRequest& active,
                                    std::exception_ptr error, bool release) {
  {
    const std::lock_guard lock(mutex_);
    failed_ += 1;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("server.requests_failed").add(1);
  }
  active.job.generated.set_exception(std::move(error));
  if (release && decoder_ != nullptr && !decoder_->fabric().closed()) {
    try {
      decoder_->release_slot(active.slot);
    } catch (...) {
      decoder_.reset();
      if (metrics_ != nullptr) {
        metrics_->counter("server.decoder_rebuilds").add(1);
      }
    }
  }
}

void InferenceServer::fail_batch(std::vector<ActiveRequest>& batch,
                                 std::exception_ptr error) {
  for (ActiveRequest& active : batch) {
    fail_generate(active, error, /*release=*/false);
  }
  batch.clear();
  // A failed DistributedDecoder is dead (its mesh is poisoned); drop it so
  // the next admission builds a fresh one.
  if (decoder_ != nullptr) {
    decoder_.reset();
    if (metrics_ != nullptr) {
      metrics_->counter("server.decoder_rebuilds").add(1);
    }
  }
}

void InferenceServer::export_telemetry() {
  const obs::TelemetryHub::Snapshot snapshot = telemetry_->sample();
  if (!options_.telemetry_jsonl_path.empty()) {
    std::ofstream out(options_.telemetry_jsonl_path, std::ios::app);
    if (out) obs::TelemetryHub::write_jsonl(snapshot, out);
  }
  if (!options_.telemetry_prometheus_path.empty()) {
    // Overwrite-in-place, textfile-collector style: the file always holds
    // exactly one (the latest) exposition.
    std::ofstream out(options_.telemetry_prometheus_path, std::ios::trunc);
    if (out) obs::TelemetryHub::write_prometheus(snapshot, out);
  }
}

void InferenceServer::telemetry_loop() {
  const auto period = std::chrono::duration<double>(
      std::max(0.01, options_.telemetry_period));
  std::unique_lock lock(telemetry_mutex_);
  for (;;) {
    if (telemetry_wake_.wait_for(lock, period,
                                 [this] { return telemetry_stop_; })) {
      break;
    }
    lock.unlock();
    export_telemetry();
    lock.lock();
  }
  // Final sample on shutdown: short-lived servers (tests, examples) still
  // get a closing snapshot even if they never lived a full period.
  lock.unlock();
  export_telemetry();
}

ServerStats InferenceServer::stats() const {
  std::vector<Seconds> waits;
  std::vector<Seconds> services;
  std::vector<Seconds> sojourns;
  std::vector<Seconds> ttfts;
  std::vector<Seconds> token_gaps;
  ServerStats stats;
  {
    const std::lock_guard lock(mutex_);
    waits = waits_;
    services = services_;
    sojourns = sojourns_;
    ttfts = ttfts_;
    token_gaps = token_gaps_;
    stats.failed = failed_;
    stats.preempted = preempted_;
    stats.runtime_rebuilds = runtime_rebuilds_;
    stats.batch_peak = batch_peak_;
  }
  stats.spec_accepted = static_cast<std::size_t>(
      spec_accepted_.load(std::memory_order_relaxed));
  stats.spec_rejected = static_cast<std::size_t>(
      spec_rejected_.load(std::memory_order_relaxed));
  stats.completed = sojourns.size();
  if (sojourns.empty()) return stats;
  const LatencyStats total = summarize(std::move(sojourns));
  stats.mean = total.mean;
  stats.p50 = total.p50;
  stats.p95 = total.p95;
  stats.max = total.max;
  stats.queue_wait = summarize(std::move(waits));
  stats.service = summarize(std::move(services));
  stats.ttft = summarize(std::move(ttfts));
  stats.per_token = summarize(std::move(token_gaps));
  return stats;
}

std::size_t InferenceServer::queue_depth() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace voltage
