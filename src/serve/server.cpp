#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.h"
#include "tensor/ops.h"

namespace voltage {

namespace {

constexpr Seconds to_seconds(obs::Micros us) {
  return static_cast<Seconds>(us) / 1e6;
}

LatencyStats summarize(std::vector<Seconds> samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const Seconds s : samples) sum += s;
  stats.mean = sum / static_cast<double>(samples.size());
  // Nearest-rank percentile: the smallest sample such that at least q of
  // the distribution is <= it (rank ceil(q*n), 1-based). The previous
  // floor(q*(n-1)) indexing under-reported upper quantiles at small n.
  const auto pct = [&](double q) {
    const double rank = std::ceil(q * static_cast<double>(samples.size()));
    const auto idx = static_cast<std::size_t>(std::max(rank, 1.0)) - 1;
    return samples[std::min(idx, samples.size() - 1)];
  };
  stats.p50 = pct(0.5);
  stats.p95 = pct(0.95);
  stats.max = samples.back();
  return stats;
}

}  // namespace

InferenceServer::InferenceServer(const TransformerModel& model,
                                 Options options)
    : model_(model),
      options_(std::move(options)),
      runtime_(make_runtime()),
      tracer_(options_.tracer),
      metrics_(options_.metrics),
      telemetry_(options_.telemetry),
      flight_recorder_(options_.flight_recorder) {
  if (tracer_ != nullptr) {
    tracer_->set_track_name(obs::kServeTrack, "server");
  }
  if (telemetry_ != nullptr) {
    telemetry_->register_rate("tokens", [this] {
      return static_cast<double>(
          tokens_generated_.load(std::memory_order_relaxed));
    });
    telemetry_->register_rate("requests", [this] {
      return static_cast<double>(
          requests_completed_.load(std::memory_order_relaxed));
    });
    if (metrics_ != nullptr) {
      // Wire volume comes from the metrics counter rather than the live
      // transport: the dispatcher swaps runtimes after poisoning, and the
      // counter survives (and sums across) those swaps.
      obs::MetricsRegistry* const metrics = metrics_;
      telemetry_->register_rate("wire_bytes", [metrics] {
        return static_cast<double>(
            metrics->counter("transport.bytes_sent").value());
      });
    }
    telemetry_->register_gauge("queue_depth",
                               [this] { return static_cast<double>(
                                            queue_depth()); });
    telemetry_thread_ = std::thread([this] { telemetry_loop(); });
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

std::unique_ptr<VoltageRuntime> InferenceServer::make_runtime() const {
  auto runtime = std::make_unique<VoltageRuntime>(
      model_, options_.scheme, options_.policy, options_.transport);
  std::size_t per_device = options_.device_intra_op_threads;
  if (per_device == 0) {
    per_device = std::max<std::size_t>(
        1, intra_op_threads() / (runtime->terminal_id() + 1));
  }
  runtime->set_intra_op_threads(per_device);
  runtime->set_precision(options_.precision);
  runtime->set_recv_timeout(options_.request_deadline);
  runtime->set_tracer(options_.tracer);
  if (options_.metrics != nullptr) runtime->set_metrics(options_.metrics);
  runtime->set_telemetry(options_.telemetry);
  runtime->set_flight_recorder(options_.flight_recorder);
  return runtime;
}

std::unique_ptr<DistributedDecoder> InferenceServer::make_decoder() const {
  auto decoder = std::make_unique<DistributedDecoder>(
      model_, options_.scheme, options_.policy, options_.transport);
  std::size_t per_device = options_.device_intra_op_threads;
  if (per_device == 0) {
    per_device = std::max<std::size_t>(
        1, intra_op_threads() / (decoder->terminal_id() + 1));
  }
  decoder->set_intra_op_threads(per_device);
  decoder->set_precision(options_.precision);
  decoder->set_recv_timeout(options_.request_deadline);
  // Metrics before tracer: set_tracer broadcasts the refresh handshake, and
  // its bytes must land on the transport counters the spans are checked
  // against.
  if (options_.metrics != nullptr) decoder->set_metrics(options_.metrics);
  decoder->set_tracer(options_.tracer);
  decoder->set_telemetry(options_.telemetry);
  decoder->set_flight_recorder(options_.flight_recorder);
  return decoder;
}

std::vector<TokenId> InferenceServer::run_generate(const GenerateRequest& req) {
  if (decoder_ == nullptr) decoder_ = make_decoder();
  Tensor logits = decoder_->prime(
      std::span<const TokenId>(req.prompt.data(), req.prompt.size()));
  std::vector<TokenId> continuation;
  continuation.reserve(req.new_tokens);
  for (std::size_t i = 0; i < req.new_tokens; ++i) {
    const auto next = static_cast<TokenId>(argmax_row(logits, 0));
    continuation.push_back(next);
    tokens_generated_.fetch_add(1, std::memory_order_relaxed);
    if (i + 1 < req.new_tokens) logits = decoder_->step(next);
  }
  return continuation;
}

void InferenceServer::rebuild_runtime_if_poisoned() {
  if (!runtime_->fabric().closed()) return;
  // A poisoned transport never recovers (that is what makes poisoning a
  // sound unblocking primitive), so the dispatcher swaps in a fresh runtime
  // rather than failing every later request with the stale close reason.
  // The installed partition executor survives the swap — only the mesh is
  // replaced, not the kernel.
  PartitionExecutor executor = runtime_->partition_executor();
  std::unique_ptr<VoltageRuntime> fresh = make_runtime();
  fresh->set_partition_executor(std::move(executor));
  runtime_ = std::move(fresh);
  {
    const std::lock_guard lock(mutex_);
    runtime_rebuilds_ += 1;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("server.runtime_rebuilds").add(1);
  }
}

InferenceServer::~InferenceServer() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    const std::lock_guard lock(telemetry_mutex_);
    telemetry_stop_ = true;
  }
  telemetry_wake_.notify_all();
  if (telemetry_thread_.joinable()) telemetry_thread_.join();
  if (telemetry_ != nullptr) {
    // The registered callables capture this server; the hub may outlive it
    // and be sampled again.
    telemetry_->unregister("tokens");
    telemetry_->unregister("requests");
    telemetry_->unregister("wire_bytes");
    telemetry_->unregister("queue_depth");
  }
}

void InferenceServer::enqueue(Job job) {
  {
    const std::lock_guard lock(mutex_);
    if (!accepting_) {
      throw std::runtime_error("InferenceServer: shut down");
    }
    job.id = next_request_id_++;
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

std::future<Tensor> InferenceServer::submit(std::vector<TokenId> tokens) {
  Job job{.input = std::move(tokens),
          .result = {},
          .generated = {},
          .id = 0,
          .arrival_us = obs::now_us()};
  std::future<Tensor> future = job.result.get_future();
  enqueue(std::move(job));
  return future;
}

std::future<Tensor> InferenceServer::submit(Image image) {
  Job job{.input = std::move(image),
          .result = {},
          .generated = {},
          .id = 0,
          .arrival_us = obs::now_us()};
  std::future<Tensor> future = job.result.get_future();
  enqueue(std::move(job));
  return future;
}

std::future<std::vector<TokenId>> InferenceServer::submit_generate(
    std::vector<TokenId> prompt, std::size_t new_tokens) {
  if (model_.spec().kind != ModelKind::kCausalLm) {
    throw std::invalid_argument("InferenceServer: generation needs a causal LM");
  }
  Job job{.input = GenerateRequest{.prompt = std::move(prompt),
                                   .new_tokens = new_tokens},
          .result = {},
          .generated = {},
          .id = 0,
          .arrival_us = obs::now_us()};
  std::future<std::vector<TokenId>> future = job.generated.get_future();
  enqueue(std::move(job));
  return future;
}

void InferenceServer::shutdown() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  wake_.notify_all();
}

void InferenceServer::dispatch_loop() {
  // The dispatcher is the terminal device of every runtime/decoder it
  // drives: publish the tracer so transport sends from this thread emit
  // flow events even outside the runtimes' own scopes.
  const obs::ThreadTracerScope tracer_scope(tracer_);
  const obs::ThreadTrackScope track_scope(obs::kServeTrack);
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // One causal trace id per request: every span and message of the whole
    // service — prefill, every decode step, all K devices — shares it.
    const obs::TraceIdScope request_trace(obs::next_trace_id());
    if (flight_recorder_ != nullptr) {
      // Per-request ring: a poisoning dump shows only this request's wire
      // history.
      flight_recorder_->clear();
    }
    const obs::Micros dispatched_us = obs::now_us();
    const obs::Micros wait_us = dispatched_us - job.arrival_us;
    if (tracer_ != nullptr) {
      // Retroactive span: the wait started at submit time on this track.
      tracer_->record(
          obs::TraceEvent{.name = "queue_wait",
                          .category = "serve",
                          .track = obs::kServeTrack,
                          .start_us = job.arrival_us,
                          .duration_us = wait_us,
                          .request = static_cast<std::int64_t>(job.id),
                          .trace = static_cast<std::int64_t>(
                              obs::thread_trace_id()),
                          .tag = {}});
    }
    const bool is_generate = std::holds_alternative<GenerateRequest>(job.input);
    try {
      Tensor logits(0, 0);
      std::vector<TokenId> continuation;
      {
        obs::TraceSpan span(tracer_, "service", "serve", obs::kServeTrack);
        span.request(static_cast<std::int64_t>(job.id));
        if (is_generate) {
          continuation = run_generate(std::get<GenerateRequest>(job.input));
        } else {
          logits = std::visit(
              [this](const auto& input) {
                if constexpr (std::is_same_v<std::decay_t<decltype(input)>,
                                             Image>) {
                  return runtime_->infer(input);
                } else if constexpr (std::is_same_v<
                                         std::decay_t<decltype(input)>,
                                         std::vector<TokenId>>) {
                  return runtime_->infer(
                      std::span<const TokenId>(input.data(), input.size()));
                } else {
                  return Tensor(0, 0);  // unreachable: generate handled above
                }
              },
              job.input);
        }
      }
      const obs::Micros done_us = obs::now_us();
      const Seconds wait = to_seconds(wait_us);
      const Seconds service = to_seconds(done_us - dispatched_us);
      const Seconds sojourn = to_seconds(done_us - job.arrival_us);
      {
        const std::lock_guard lock(mutex_);
        waits_.push_back(wait);
        services_.push_back(service);
        sojourns_.push_back(sojourn);
      }
      if (metrics_ != nullptr) {
        metrics_->counter("server.requests_completed").add(1);
        metrics_->histogram("server.queue_wait_seconds").record(wait);
        metrics_->histogram("server.service_seconds").record(service);
        metrics_->histogram("server.sojourn_seconds").record(sojourn);
      }
      requests_completed_.fetch_add(1, std::memory_order_relaxed);
      if (is_generate) {
        job.generated.set_value(std::move(continuation));
      } else {
        job.result.set_value(std::move(logits));
      }
    } catch (...) {
      {
        const std::lock_guard lock(mutex_);
        failed_ += 1;
      }
      if (metrics_ != nullptr) {
        metrics_->counter("server.requests_failed").add(1);
      }
      if (is_generate) {
        job.generated.set_exception(std::current_exception());
        // A failed DistributedDecoder is dead (its mesh is poisoned); drop
        // it so the next generation request builds a fresh one.
        if (decoder_ != nullptr) {
          decoder_.reset();
          if (metrics_ != nullptr) {
            metrics_->counter("server.decoder_rebuilds").add(1);
          }
        }
      } else {
        job.result.set_exception(std::current_exception());
        // A failure that poisoned the mesh must not doom every later
        // request: swap in a fresh runtime so the dispatcher keeps serving.
        rebuild_runtime_if_poisoned();
      }
    }
  }
}

void InferenceServer::export_telemetry() {
  const obs::TelemetryHub::Snapshot snapshot = telemetry_->sample();
  if (!options_.telemetry_jsonl_path.empty()) {
    std::ofstream out(options_.telemetry_jsonl_path, std::ios::app);
    if (out) obs::TelemetryHub::write_jsonl(snapshot, out);
  }
  if (!options_.telemetry_prometheus_path.empty()) {
    // Overwrite-in-place, textfile-collector style: the file always holds
    // exactly one (the latest) exposition.
    std::ofstream out(options_.telemetry_prometheus_path, std::ios::trunc);
    if (out) obs::TelemetryHub::write_prometheus(snapshot, out);
  }
}

void InferenceServer::telemetry_loop() {
  const auto period = std::chrono::duration<double>(
      std::max(0.01, options_.telemetry_period));
  std::unique_lock lock(telemetry_mutex_);
  for (;;) {
    if (telemetry_wake_.wait_for(lock, period,
                                 [this] { return telemetry_stop_; })) {
      break;
    }
    lock.unlock();
    export_telemetry();
    lock.lock();
  }
  // Final sample on shutdown: short-lived servers (tests, examples) still
  // get a closing snapshot even if they never lived a full period.
  lock.unlock();
  export_telemetry();
}

ServerStats InferenceServer::stats() const {
  std::vector<Seconds> waits;
  std::vector<Seconds> services;
  std::vector<Seconds> sojourns;
  ServerStats stats;
  {
    const std::lock_guard lock(mutex_);
    waits = waits_;
    services = services_;
    sojourns = sojourns_;
    stats.failed = failed_;
    stats.runtime_rebuilds = runtime_rebuilds_;
  }
  stats.completed = sojourns.size();
  if (sojourns.empty()) return stats;
  const LatencyStats total = summarize(std::move(sojourns));
  stats.mean = total.mean;
  stats.p50 = total.p50;
  stats.p95 = total.p95;
  stats.max = total.max;
  stats.queue_wait = summarize(std::move(waits));
  stats.service = summarize(std::move(services));
  return stats;
}

std::size_t InferenceServer::queue_depth() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace voltage
