// InferenceServer: the deployment wrapper for the paper's serving regime —
// sporadic requests, batch size 1, one shared device cluster.
//
// Requests (token sequences or images) enter a FIFO queue from any thread
// and resolve through std::future; a dispatcher thread drives a
// VoltageRuntime one request at a time (the whole cluster serves each
// request — that is the point of latency-oriented distribution). Queue-wait,
// service and total sojourn times are recorded per request so real
// deployments can be compared against the queueing simulation in
// sim/serving.h; attach an obs::Tracer to see each request's queue_wait and
// service spans (with request ids) on the serving track of the trace, next
// to the per-device spans the runtime emits while serving it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "net/link.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "partition/order.h"
#include "partition/scheme.h"
#include "runtime/distributed_decoder.h"
#include "runtime/voltage_runtime.h"
#include "transformer/model.h"

namespace voltage {

struct LatencyStats {
  Seconds mean = 0.0;
  Seconds p50 = 0.0;
  Seconds p95 = 0.0;
  Seconds max = 0.0;
};

struct ServerStats {
  std::size_t completed = 0;
  // Requests whose future carries an exception instead of logits (inference
  // failure, poisoned transport, deadline). Not included in the latency
  // percentiles below.
  std::size_t failed = 0;
  // Times the dispatcher rebuilt its runtime after a poisoned transport.
  std::size_t runtime_rebuilds = 0;
  // Total sojourn = queue wait + service.
  Seconds mean = 0.0;
  Seconds p50 = 0.0;
  Seconds p95 = 0.0;
  Seconds max = 0.0;
  // The two components, recorded separately per request.
  LatencyStats queue_wait;
  LatencyStats service;
};

class InferenceServer {
 public:
  struct Options {
    PartitionScheme scheme = PartitionScheme::even(1);
    OrderPolicy policy = OrderPolicy::kAdaptive;
    TransportKind transport = TransportKind::kInMemory;
    // Precision::kInt8 serves on the quantized plane: int8 layer kernels and
    // int8 + per-row-scale collective payloads in both the runtime and the
    // decoder (see VoltageRuntime::set_precision). Logits differ from fp32
    // within the quantization bound (DESIGN.md "Quantized path").
    Precision precision = Precision::kFp32;
    // Intra-op thread budget per device thread. 0 (default) divides the
    // ambient budget (VOLTAGE_THREADS or the core count) evenly across the
    // devices, so a serving cluster uses the whole host; any other value is
    // forwarded to VoltageRuntime::set_intra_op_threads verbatim. Results
    // are bitwise identical at every setting.
    std::size_t device_intra_op_threads = 0;
    // Per-request deadline in seconds (0 = none): every blocking receive of
    // a request's inference shares one absolute deadline, so a wedged
    // device fails the request with RecvTimeoutError instead of wedging the
    // dispatcher — and with it every queued future — forever.
    Seconds request_deadline = 0.0;
    // Optional observability sinks (all non-owning; nullptr = off).
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
    // Live telemetry plane (obs/telemetry.h). When `telemetry` is set the
    // server registers its serving rates (tokens/s, requests/s — and wire
    // bytes/s when `metrics` is also attached), a queue-depth gauge and
    // per-device utilization, and a sampler thread exports a snapshot every
    // `telemetry_period` seconds: appended as JSONL to
    // `telemetry_jsonl_path` and/or overwritten in the Prometheus text
    // format at `telemetry_prometheus_path` (empty path = skip that sink;
    // snapshots are still taken so tests can sample() concurrently).
    obs::TelemetryHub* telemetry = nullptr;
    Seconds telemetry_period = 1.0;
    std::string telemetry_jsonl_path = {};
    std::string telemetry_prometheus_path = {};
    // Per-request flight recorder: attached to the runtime and decoder
    // transports (its ring auto-dumps when a transport is poisoned) and
    // cleared at each dispatch, so a dump holds only the doomed request's
    // wire history.
    obs::FlightRecorder* flight_recorder = nullptr;
  };

  InferenceServer(const TransformerModel& model, Options options);
  // Drains outstanding requests, then stops.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Enqueue a request; the future resolves with the logits (or the
  // exception the inference raised). Throws std::runtime_error after
  // shutdown().
  [[nodiscard]] std::future<Tensor> submit(std::vector<TokenId> tokens);
  [[nodiscard]] std::future<Tensor> submit(Image image);

  // Enqueue a greedy-generation request (causal LMs only): the future
  // resolves with the `new_tokens` continuation tokens. Decoding runs
  // through a DistributedDecoder the dispatcher keeps across requests —
  // one distributed prefill per request, then O(T) cached steps; a failed
  // generation drops the decoder, and the next request builds a fresh one
  // (same recovery contract as the runtime rebuild).
  [[nodiscard]] std::future<std::vector<TokenId>> submit_generate(
      std::vector<TokenId> prompt, std::size_t new_tokens);

  // Stops accepting new requests; queued ones still complete.
  void shutdown();

  // Latency statistics over completed requests.
  [[nodiscard]] ServerStats stats() const;

  [[nodiscard]] std::size_t queue_depth() const;

  // The runtime currently serving requests (rebuilt after transport
  // poisoning — do not cache the reference across failures). Exposed for
  // configuration and fault-injection tests; touch it only while no request
  // is in flight.
  [[nodiscard]] VoltageRuntime& runtime() noexcept { return *runtime_; }

 private:
  struct GenerateRequest {
    std::vector<TokenId> prompt;
    std::size_t new_tokens = 0;
  };

  struct Job {
    std::variant<std::vector<TokenId>, Image, GenerateRequest> input;
    std::promise<Tensor> result;                   // logits requests
    std::promise<std::vector<TokenId>> generated;  // generation requests
    std::uint64_t id = 0;
    obs::Micros arrival_us = 0;
  };

  void enqueue(Job job);
  void dispatch_loop();
  void telemetry_loop();
  void export_telemetry();
  [[nodiscard]] std::unique_ptr<VoltageRuntime> make_runtime() const;
  [[nodiscard]] std::unique_ptr<DistributedDecoder> make_decoder() const;
  [[nodiscard]] std::vector<TokenId> run_generate(const GenerateRequest& req);
  void rebuild_runtime_if_poisoned();

  const TransformerModel& model_;
  Options options_;  // construction parameters, kept for runtime rebuilds
  std::unique_ptr<VoltageRuntime> runtime_;
  // Lazily built on the first generation request; dispatcher-thread only.
  std::unique_ptr<DistributedDecoder> decoder_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TelemetryHub* telemetry_ = nullptr;
  obs::FlightRecorder* flight_recorder_ = nullptr;
  std::atomic<std::uint64_t> tokens_generated_{0};
  std::atomic<std::uint64_t> requests_completed_{0};

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Job> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  std::uint64_t next_request_id_ = 0;
  std::size_t failed_ = 0;
  std::size_t runtime_rebuilds_ = 0;
  std::vector<Seconds> waits_;
  std::vector<Seconds> services_;
  std::vector<Seconds> sojourns_;
  std::thread dispatcher_;

  // Telemetry sampler (only started when options.telemetry is set).
  std::mutex telemetry_mutex_;
  std::condition_variable telemetry_wake_;
  bool telemetry_stop_ = false;
  std::thread telemetry_thread_;
};

}  // namespace voltage
