// InferenceServer: the deployment wrapper for the paper's serving regime —
// sporadic requests, batch size 1, one shared device cluster.
//
// Requests (token sequences or images) enter a FIFO queue from any thread
// and resolve through std::future; a dispatcher thread drives a
// VoltageRuntime one request at a time (the whole cluster serves each
// request — that is the point of latency-oriented distribution). Sojourn
// times (queue wait + service) are recorded so real deployments can be
// compared against the queueing simulation in sim/serving.h.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <variant>
#include <vector>

#include "net/link.h"
#include "partition/order.h"
#include "partition/scheme.h"
#include "runtime/voltage_runtime.h"
#include "transformer/model.h"

namespace voltage {

struct ServerStats {
  std::size_t completed = 0;
  Seconds mean = 0.0;
  Seconds p50 = 0.0;
  Seconds p95 = 0.0;
  Seconds max = 0.0;
};

class InferenceServer {
 public:
  struct Options {
    PartitionScheme scheme = PartitionScheme::even(1);
    OrderPolicy policy = OrderPolicy::kAdaptive;
    TransportKind transport = TransportKind::kInMemory;
  };

  InferenceServer(const TransformerModel& model, Options options);
  // Drains outstanding requests, then stops.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Enqueue a request; the future resolves with the logits (or the
  // exception the inference raised). Throws std::runtime_error after
  // shutdown().
  [[nodiscard]] std::future<Tensor> submit(std::vector<TokenId> tokens);
  [[nodiscard]] std::future<Tensor> submit(Image image);

  // Stops accepting new requests; queued ones still complete.
  void shutdown();

  // Sojourn-time statistics over completed requests.
  [[nodiscard]] ServerStats stats() const;

  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Job {
    std::variant<std::vector<TokenId>, Image> input;
    std::promise<Tensor> result;
    std::chrono::steady_clock::time_point arrival;
  };

  [[nodiscard]] std::future<Tensor> enqueue(Job job);
  void dispatch_loop();

  const TransformerModel& model_;
  VoltageRuntime runtime_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Job> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  std::vector<Seconds> sojourns_;
  std::thread dispatcher_;
};

}  // namespace voltage
