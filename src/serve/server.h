// InferenceServer: the deployment wrapper for the paper's serving regime —
// sporadic requests over one shared device cluster.
//
// Requests (token sequences, images, or greedy-generation jobs) enter a FIFO
// queue from any thread and resolve through std::future. A dispatcher thread
// drives two planes:
//   - logits/image requests run one at a time through a VoltageRuntime (the
//     whole cluster serves each request — that is the point of
//     latency-oriented distribution);
//   - generation requests are served with iteration-level continuous
//     batching (Orca-style): the dispatcher admits queued generations into a
//     running batch (up to `max_batch`), advances every in-flight sequence
//     each iteration — one token per DistributedDecoder::step_batch call,
//     or up to 1 + max_draft_tokens when a drafter is configured and the
//     speculative verify round accepts — and requests
//     join and leave that batch at token granularity — a short completion
//     never waits for a long batch-mate, and a newly admitted prompt starts
//     decoding on the next iteration. Each sequence's KV state lives in
//     per-device paged block pools and is freed the moment the request
//     completes (or is preempted past its deadline).
//
// Queue-wait, service and total sojourn times are recorded per request, plus
// time-to-first-token and per-token decode latency for generations, so real
// deployments can be compared against the queueing simulation in
// sim/serving.h; attach an obs::Tracer to see each request's queue_wait and
// service spans (with request ids) on the serving track of the trace, next
// to the batch-size-annotated decode.step spans the decoder emits while
// serving it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "net/link.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "partition/order.h"
#include "partition/scheme.h"
#include "runtime/distributed_decoder.h"
#include "runtime/drafter.h"
#include "runtime/voltage_runtime.h"
#include "transformer/model.h"

namespace voltage {

struct LatencyStats {
  Seconds mean = 0.0;
  Seconds p50 = 0.0;
  Seconds p95 = 0.0;
  Seconds p99 = 0.0;
  Seconds max = 0.0;
};

struct ServerStats {
  std::size_t completed = 0;
  // Requests whose future carries an exception instead of a result
  // (inference failure, poisoned transport, deadline). Not included in the
  // latency percentiles below.
  std::size_t failed = 0;
  // Subset of `failed`: generation requests cut from the running batch
  // because their per-request deadline expired mid-decode.
  std::size_t preempted = 0;
  // Times the dispatcher rebuilt its runtime after a poisoned transport.
  std::size_t runtime_rebuilds = 0;
  // Largest number of generation requests decoding in one batched step.
  std::size_t batch_peak = 0;
  // Speculative decoding (only moves when Options::drafter_factory is set):
  // draft tokens the verify rounds accepted vs rejected. The acceptance
  // rate accepted/(accepted+rejected) is also exported live as the
  // "server.spec_accept_rate" telemetry gauge.
  std::size_t spec_accepted = 0;
  std::size_t spec_rejected = 0;
  // Total sojourn = queue wait + service.
  Seconds mean = 0.0;
  Seconds p50 = 0.0;
  Seconds p95 = 0.0;
  Seconds max = 0.0;
  // The two components, recorded separately per request.
  LatencyStats queue_wait;
  LatencyStats service;
  // Generation requests only: arrival -> first generated token (prefill
  // plus any time queued or waiting on batch-mates), and the mean
  // inter-token gap of the decode phase per request.
  LatencyStats ttft;
  LatencyStats per_token;
};

class InferenceServer {
 public:
  struct Options {
    PartitionScheme scheme = PartitionScheme::even(1);
    OrderPolicy policy = OrderPolicy::kAdaptive;
    TransportKind transport = TransportKind::kInMemory;
    // Precision::kInt8 serves on the quantized plane: int8 layer kernels and
    // int8 + per-row-scale collective payloads in both the runtime and the
    // decoder (see VoltageRuntime::set_precision). Logits differ from fp32
    // within the quantization bound (DESIGN.md "Quantized path").
    Precision precision = Precision::kFp32;
    // Admission cap of the continuous-batching scheduler: at most this many
    // generation requests decode concurrently; further generations wait in
    // the queue (FIFO among themselves) until a running one completes or is
    // preempted. 1 degenerates to the PR-5 one-at-a-time dispatcher.
    std::size_t max_batch = 8;
    // Intra-op thread budget per device thread. 0 (default) divides the
    // ambient budget (VOLTAGE_THREADS or the core count) evenly across the
    // devices, so a serving cluster uses the whole host; any other value is
    // forwarded to VoltageRuntime::set_intra_op_threads verbatim. Results
    // are bitwise identical at every setting.
    std::size_t device_intra_op_threads = 0;
    // Per-request deadline in seconds (0 = none). Two roles: every blocking
    // receive of a request's inference shares one absolute deadline, so a
    // wedged device fails the request with RecvTimeoutError instead of
    // wedging the dispatcher forever; and the batch scheduler preempts any
    // generation still decoding `request_deadline` seconds after its
    // arrival — its future fails, its KV blocks free, and its batch-mates
    // continue unharmed.
    Seconds request_deadline = 0.0;
    // Caps each decoder device's KV block pool (see
    // DistributedDecoder::set_kv_block_limit); 0 = unbounded.
    std::size_t kv_block_limit = 0;
    // Speculative decoding: when set, each admitted generation gets its own
    // Drafter (e.g. [] { return std::make_unique<PromptLookupDrafter>(); })
    // and the scheduler verifies up to `max_draft_tokens` drafted tokens per
    // decode iteration through DistributedDecoder::step_speculative — same
    // message count per round as a plain step, up to 1 + max_draft_tokens
    // committed tokens. Output is bitwise identical to serving without a
    // drafter (greedy verification; see DESIGN.md "Speculative decoding").
    // A per-slot SpeculationController shrinks the window when drafts stop
    // landing. Unset (default) = plain single-token stepping.
    std::function<std::unique_ptr<Drafter>()> drafter_factory = {};
    std::size_t max_draft_tokens = 4;
    // Test hook: builds the decoder's transport (devices = K workers + the
    // terminal) instead of make_transport(transport, ...) — the way to
    // inject a ChaosTransport underneath a serving batch. Called once per
    // decoder build, including rebuilds after a mesh failure.
    std::function<std::unique_ptr<Transport>(std::size_t devices)>
        decoder_transport_factory = {};
    // Optional observability sinks (all non-owning; nullptr = off).
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
    // Live telemetry plane (obs/telemetry.h). When `telemetry` is set the
    // server registers its serving rates (tokens/s, requests/s — and wire
    // bytes/s when `metrics` is also attached), the "server.queue_depth"
    // and "server.batch_occupancy" gauges and per-device utilization, and a
    // sampler thread exports a snapshot every `telemetry_period` seconds:
    // appended as JSONL to `telemetry_jsonl_path` and/or overwritten in the
    // Prometheus text format at `telemetry_prometheus_path` (empty path =
    // skip that sink; snapshots are still taken so tests can sample()
    // concurrently).
    obs::TelemetryHub* telemetry = nullptr;
    Seconds telemetry_period = 1.0;
    std::string telemetry_jsonl_path = {};
    std::string telemetry_prometheus_path = {};
    // Flight recorder: attached to the runtime and decoder transports (its
    // ring auto-dumps when a transport is poisoned) and cleared at each
    // scheduler iteration, so a dump holds the wire history of the current
    // batch iteration.
    obs::FlightRecorder* flight_recorder = nullptr;
  };

  InferenceServer(const TransformerModel& model, Options options);
  // Drains outstanding requests, then stops.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Enqueue a request; the future resolves with the logits (or the
  // exception the inference raised). Throws std::runtime_error after
  // shutdown().
  [[nodiscard]] std::future<Tensor> submit(std::vector<TokenId> tokens);
  [[nodiscard]] std::future<Tensor> submit(Image image);

  // Enqueue a greedy-generation request (causal LMs only): the future
  // resolves with the `new_tokens` continuation tokens. Decoding runs
  // through a DistributedDecoder the dispatcher keeps across requests —
  // one distributed prefill per request, then O(T) cached steps batched
  // with the other in-flight generations (the result is bitwise identical
  // to serving alone; see DESIGN.md "Continuous batching"). A mesh failure
  // fails every generation decoding at that moment and drops the decoder;
  // queued requests are served by a fresh one.
  [[nodiscard]] std::future<std::vector<TokenId>> submit_generate(
      std::vector<TokenId> prompt, std::size_t new_tokens);

  // Stops accepting new requests; queued ones still complete.
  void shutdown();

  // Latency statistics over completed requests.
  [[nodiscard]] ServerStats stats() const;

  [[nodiscard]] std::size_t queue_depth() const;

  // Generation requests currently decoding in the running batch.
  [[nodiscard]] std::size_t batch_occupancy() const noexcept {
    return batch_size_.load(std::memory_order_relaxed);
  }

  // The runtime currently serving requests (rebuilt after transport
  // poisoning — do not cache the reference across failures). Exposed for
  // configuration and fault-injection tests; touch it only while no request
  // is in flight.
  [[nodiscard]] VoltageRuntime& runtime() noexcept { return *runtime_; }

 private:
  struct GenerateRequest {
    std::vector<TokenId> prompt;
    std::size_t new_tokens = 0;
  };

  struct Job {
    std::variant<std::vector<TokenId>, Image, GenerateRequest> input;
    std::promise<Tensor> result;                   // logits requests
    std::promise<std::vector<TokenId>> generated;  // generation requests
    std::uint64_t id = 0;
    obs::Micros arrival_us = 0;
  };

  // One generation decoding in the running batch.
  struct ActiveRequest {
    Job job;
    std::size_t target = 0;  // new_tokens
    SlotId slot = 0;
    std::vector<TokenId> generated;
    TokenId next = 0;  // last generated token: the next step's input
    // Speculation state (null drafter when the server runs without one).
    std::unique_ptr<Drafter> drafter;
    SpeculationController spec;
    obs::Micros admitted_us = 0;
    obs::Micros first_token_us = 0;
    obs::Micros deadline_us = 0;  // absolute, 0 = none
  };

  void enqueue(Job job);
  void dispatch_loop();
  void serve_inline(Job job);
  // Admission: prefill + first token. True if the request entered the
  // batch; false if it completed or failed immediately.
  bool admit_generate(Job job, std::vector<ActiveRequest>& batch);
  void complete_generate(ActiveRequest& active);
  void fail_generate(ActiveRequest& active, std::exception_ptr error,
                     bool release);
  // Mesh death: fails every in-flight generation with `error` and drops the
  // decoder so the next admission builds a fresh one.
  void fail_batch(std::vector<ActiveRequest>& batch, std::exception_ptr error);
  void telemetry_loop();
  void export_telemetry();
  [[nodiscard]] std::unique_ptr<VoltageRuntime> make_runtime() const;
  [[nodiscard]] std::unique_ptr<DistributedDecoder> make_decoder() const;
  void rebuild_runtime_if_poisoned();

  const TransformerModel& model_;
  Options options_;  // construction parameters, kept for runtime rebuilds
  std::unique_ptr<VoltageRuntime> runtime_;
  // Lazily built at the first generation admission; dispatcher-thread only.
  std::unique_ptr<DistributedDecoder> decoder_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TelemetryHub* telemetry_ = nullptr;
  obs::FlightRecorder* flight_recorder_ = nullptr;
  std::atomic<std::uint64_t> tokens_generated_{0};
  std::atomic<std::uint64_t> requests_completed_{0};
  std::atomic<std::size_t> batch_size_{0};
  std::atomic<std::uint64_t> spec_accepted_{0};
  std::atomic<std::uint64_t> spec_rejected_{0};

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Job> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  std::uint64_t next_request_id_ = 0;
  std::size_t failed_ = 0;
  std::size_t preempted_ = 0;
  std::size_t runtime_rebuilds_ = 0;
  std::size_t batch_peak_ = 0;
  std::vector<Seconds> waits_;
  std::vector<Seconds> services_;
  std::vector<Seconds> sojourns_;
  std::vector<Seconds> ttfts_;
  std::vector<Seconds> token_gaps_;
  std::thread dispatcher_;

  // Telemetry sampler (only started when options.telemetry is set).
  std::mutex telemetry_mutex_;
  std::condition_variable telemetry_wake_;
  bool telemetry_stop_ = false;
  std::thread telemetry_thread_;
};

}  // namespace voltage
