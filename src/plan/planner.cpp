#include "plan/planner.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace voltage {

namespace {

double best_of(int reps, const auto& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

// Positions-per-device counts -> exact PartitionScheme (ratios are integer
// multiples of 1/n, so the scheme's rounded ranges reproduce the counts).
PartitionScheme scheme_from_counts(const std::vector<std::size_t>& counts,
                                   std::size_t n) {
  std::vector<double> ratios(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ratios[i] = static_cast<double>(counts[i]) / static_cast<double>(n);
  }
  return PartitionScheme(std::move(ratios));
}

}  // namespace

sim::DeviceSpec profile_this_device(std::string name, std::size_t gemm_dim,
                                    int reps) {
  if (gemm_dim == 0) {
    throw std::invalid_argument("profile_this_device: gemm_dim == 0");
  }
  Rng rng(1);
  const Tensor a = rng.normal_tensor(gemm_dim, gemm_dim, 1.0F);
  const Tensor b = rng.normal_tensor(gemm_dim, gemm_dim, 1.0F);
  const double t_gemm = best_of(reps, [&] { (void)matmul(a, b); });
  const double macs = static_cast<double>(gemm_dim) * gemm_dim * gemm_dim;

  Tensor x = rng.normal_tensor(512, 1024, 1.0F);
  const Tensor bias = rng.normal_tensor(1, 1024, 1.0F);
  // One pass = gelu (8 ops/elt) + bias add (1 op/elt), as ops.cpp counts.
  const double t_elem = best_of(reps, [&] {
    add_bias_inplace(x, bias);
    (void)gelu(x);
  });
  const double elem_ops = 9.0 * static_cast<double>(x.size());

  return sim::DeviceSpec{.name = std::move(name),
                         .mac_rate = macs / t_gemm,
                         .elementwise_rate = elem_ops / t_elem};
}

PartitionScheme plan_proportional(const sim::Cluster& cluster) {
  cluster.validate();
  std::vector<double> weights;
  weights.reserve(cluster.size());
  for (const sim::DeviceSpec& d : cluster.workers) {
    weights.push_back(d.mac_rate);
  }
  return PartitionScheme::proportional(weights);
}

PlanResult optimize_scheme(const ModelSpec& spec, std::size_t n,
                           const sim::Cluster& cluster, OrderPolicy policy,
                           std::size_t max_rounds) {
  cluster.validate();
  const std::size_t k = cluster.size();
  if (n < k) {
    throw std::invalid_argument("optimize_scheme: fewer positions than devices");
  }

  // Proportional seed, quantized to whole positions summing to n.
  const PartitionScheme seed = plan_proportional(cluster);
  std::vector<std::size_t> counts(k);
  for (std::size_t i = 0; i < k; ++i) {
    counts[i] = seed.range_for(i, n).size();
  }

  PlanResult result{.scheme = scheme_from_counts(counts, n),
                    .predicted_latency = 0.0,
                    .evaluations = 1};
  result.predicted_latency =
      simulate_voltage(spec, n, cluster, result.scheme, policy).total;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Find the straggler (longest compute) and the most idle device under
    // the current counts.
    std::size_t slowest = 0;
    std::size_t fastest = 0;
    double worst = -1.0;
    double best = 1e300;
    for (std::size_t i = 0; i < k; ++i) {
      const LayerWork work = voltage_layer_work(
          spec.layer, n, Range{0, counts[i]}, policy);
      const double t =
          cluster.workers[i].compute_time(work.macs, work.elementwise);
      if (t > worst) {
        worst = t;
        slowest = i;
      }
      if (t < best) {
        best = t;
        fastest = i;
      }
    }
    if (slowest == fastest || counts[slowest] == 0) break;

    auto candidate = counts;
    candidate[slowest] -= 1;
    candidate[fastest] += 1;
    const PartitionScheme scheme = scheme_from_counts(candidate, n);
    const Seconds latency =
        simulate_voltage(spec, n, cluster, scheme, policy).total;
    ++result.evaluations;
    if (latency + 1e-12 < result.predicted_latency) {
      counts = std::move(candidate);
      result.scheme = scheme;
      result.predicted_latency = latency;
    } else {
      break;  // greedy local optimum
    }
  }
  return result;
}

}  // namespace voltage
