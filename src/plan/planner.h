// Partition-scheme planning for heterogeneous edge clusters.
//
// The paper's scheme is a ratio vector precisely so devices can take
// unequal shares (§V-B), but it leaves choosing the ratios open. This
// module closes the loop:
//   - profile_this_device(): micro-benchmark the host's real kernel
//     throughput into a sim::DeviceSpec;
//   - plan_proportional(): ratios proportional to device MAC rates;
//   - optimize_scheme(): integer coordinate descent on top of the
//     proportional seed, minimizing the simulated end-to-end latency
//     (captures effects ratios alone miss: the all-gather straggler, the
//     Theorem-2 order flip when a partition crosses the threshold, fixed
//     per-message costs).
#pragma once

#include <cstddef>
#include <string>

#include "parallel/latency_model.h"
#include "partition/order.h"
#include "partition/scheme.h"
#include "sim/cluster.h"

namespace voltage {

// Measures this host's effective GEMM MAC rate and elementwise rate using
// the real kernels (best-of-`reps` timing of a gemm_dim^3 matmul and an
// elementwise pass). Use it to describe real machines to the planner.
[[nodiscard]] sim::DeviceSpec profile_this_device(std::string name,
                                                  std::size_t gemm_dim = 192,
                                                  int reps = 3);

// Ratios proportional to worker MAC rates.
[[nodiscard]] PartitionScheme plan_proportional(const sim::Cluster& cluster);

struct PlanResult {
  PartitionScheme scheme;
  Seconds predicted_latency = 0.0;
  std::size_t evaluations = 0;  // latency-model invocations spent
};

// Greedy integer descent: start from the proportional split of the N
// positions, repeatedly move one position from the device that finishes
// last to the one that finishes first, keep the move if the simulated
// latency improves. Terminates after `max_rounds` non-improving rounds or
// when no move helps.
[[nodiscard]] PlanResult optimize_scheme(const ModelSpec& spec, std::size_t n,
                                         const sim::Cluster& cluster,
                                         OrderPolicy policy,
                                         std::size_t max_rounds = 64);

}  // namespace voltage
